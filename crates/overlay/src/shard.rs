//! The sharded window executor: one `OverlayNet::run` spread across
//! worker threads with **byte-identical** output at any shard count.
//!
//! # Why destination partitioning makes this exact
//!
//! A link's send path never reads its *source* node: the sender pump
//! snapshotted the source inventory at connect time (§6.1's freeze),
//! and loss draws come from a link-private RNG. So a link's entire
//! life — send opportunities, loss, delivery — touches only link-local
//! state plus the **destination** node. Assigning every link to the
//! shard that owns its destination node therefore eliminates all
//! cross-shard writes; what remains shared is only the *global order*
//! in which effects must appear.
//!
//! # The order, reified
//!
//! The serial engine executes, per tick `t`: queued arrivals in `seq`
//! order, then link sends in link-index order. Sequence numbers are
//! assigned when arrivals are scheduled, i.e. in `(send tick, link)`
//! order — so the serial order of *every* event is captured by a
//! shard-independent key, [`GKey`]:
//!
//! * old queued arrival: `(t, arrival, old, seq, 0)` — its seq was
//!   assigned in an earlier run or window, before any new one;
//! * freshly staged arrival: `(t, arrival, staged, send_tick, link)` —
//!   exactly the order its seq *will be* assigned in;
//! * send: `(t, send, ·, t, link)` — sends follow arrivals within a
//!   tick, in link order; a zero-latency delivery shares its send's key.
//!
//! # Windows: stage, agree, commit
//!
//! Shards advance in bounded synchronized windows of [`WINDOW`] ticks
//! (the conservative-lookahead epoch: nothing staged in a window can
//! affect another shard before the next barrier, because sends read no
//! remote state and cross-window arrivals are exchanged at the
//! barrier). Each window runs:
//!
//! 1. **Generate** (parallel): each shard pumps its calendar through
//!    `[t0, t1)`, recording every send as a [`SendRec`] (link counters
//!    and pump/RNG state advance optimistically; `prev_next_send`
//!    makes the cadence reversible), and collects the window's
//!    delivery [`Item`]s — old queue events plus staged arrivals
//!    landing inside the window.
//! 2. **Probe completion** (parallel, same pass): items sort by
//!    `(node, key)`; for every *observer* node still incomplete at the
//!    window start, deliveries apply in key order until the node
//!    completes, yielding its completion key `k_n`. These effects are
//!    final: `k_n ≤ K` always (see below), so nothing applied here is
//!    ever rolled back.
//! 3. **Agree on the cut `K`** (main thread): the serial engine stops
//!    at the first event completing *all* observers — that is
//!    `K = max(k_n)` if every incomplete observer found a finite
//!    `k_n`, else `K = ∞` (no completion this window). Then sequence
//!    numbers are assigned by a deterministic cross-shard merge of
//!    committed sends in `(send tick, link)` order — reproducing the
//!    serial assignment exactly — and arrivals that land beyond the
//!    window (or beyond `K`) become ordinary queue events.
//! 4. **Commit** (parallel): remaining items with key ≤ `K` apply;
//!    send records with key > `K` roll back (counters, cadence,
//!    exhaustion — the serial engine never executed them). Committed
//!    events are counted and the clock advances to the last committed
//!    tick, exactly as the serial loop would have left it.
//!
//! The result is provably independent of both the shard count and the
//! window width: the partition affects only which thread computes an
//! effect, never its key, and every committed effect is ≤ `K` while
//! every rolled-back one is > `K`.
//!
//! Pump internals (candidate shuffles, loss RNG positions) may advance
//! past `K` in a window that ends `Completed`; this is unobservable —
//! no caller resumes a completed net, and every *counter* is restored.
//!
//! # Memory layout
//!
//! Extraction doubles as the hot/cold split: the per-tick hot fields
//! (pump, cadence, loss RNG, counters) move into dense per-shard
//! [`SLink`] arrays walked by the window loop, while cold
//! configuration (endpoints, handshake accounting, summary choice)
//! stays behind in `LinkState`. Symbol ids staged during a window live
//! in one per-shard arena, not per-packet allocations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;
use std::time::Instant;

use icd_obs::{ProfileHandle, TraceEvent, TraceHandle};
use icd_util::partition::{balanced_ranges, owner_of};
use icd_util::rng::{Rng64, Xoshiro256StarStar};
use icd_wire::{encoded_symbol_frame_len, recoded_symbol_frame_len};

use super::{
    Event, EventKind, Link, LinkId, LinkSource, NodeState, OverlayNet, RunLimit, StopReason, Time,
};
use crate::strategy::{FullSender, PacketScratch, Sender};
use crate::SymbolId;

/// Window width in ticks — the synchronized epoch length. Output is
/// provably independent of this value (every committed effect is keyed
/// globally); it only trades barrier frequency against rollback width.
const WINDOW: Time = 64;

/// Total order over everything the serial engine does. Derived `Ord`
/// compares fields lexicographically, which is exactly the serial
/// execution order (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct GKey {
    time: Time,
    /// 0 = arrival, 1 = send: arrivals land before sends each tick.
    phase: u8,
    /// Among arrivals: 0 = old queue event (ordered by its existing
    /// seq), 1 = staged this window (ordered by the seq it will get).
    /// Old seqs always precede new ones, so `old < staged` at a tick.
    tag: u8,
    a: u64,
    b: u64,
}

/// Sentinel: "no completion in this window" — above every real key.
const KEY_MAX: GKey = GKey {
    time: Time::MAX,
    phase: u8::MAX,
    tag: u8::MAX,
    a: u64::MAX,
    b: u64::MAX,
};

fn send_key(time: Time, gid: u32) -> GKey {
    GKey {
        time,
        phase: 1,
        tag: 0,
        a: time,
        b: u64::from(gid),
    }
}

fn old_key(time: Time, seq: u64) -> GKey {
    GKey {
        time,
        phase: 0,
        tag: 0,
        a: seq,
        b: 0,
    }
}

fn staged_key(arrival: Time, send_tick: Time, gid: u32) -> GKey {
    GKey {
        time: arrival,
        phase: 0,
        tag: 1,
        a: send_tick,
        b: u64::from(gid),
    }
}

/// A queued arrival carried between windows (and to/from the global
/// event queue), with its already-assigned sequence number.
#[derive(Debug)]
struct QEvent {
    time: Time,
    seq: u64,
    gid: u32,
    recoded: bool,
    ids: Vec<SymbolId>,
}

impl PartialEq for QEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for QEvent {}
impl PartialOrd for QEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A link's pump, restricted to the two self-contained (`Send`) kinds
/// the sharded path accepts.
// Deliberately inline despite the variant size gap: pumps live in the
// per-shard hot `SLink` array and are hit on every send; boxing the
// common `Sender` variant would add a pointer chase to the hottest loop
// to save memory on the rare fountain-only nets.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum SPump {
    Strategy(Sender),
    Fountain(FullSender),
}

impl SPump {
    fn next_packet_into(&mut self, scratch: &mut PacketScratch) -> bool {
        match self {
            SPump::Strategy(s) => s.next_packet_into(scratch),
            SPump::Fountain(f) => {
                f.next_packet_into(scratch);
                true
            }
        }
    }
}

/// Hot per-link state, extracted from `LinkState` for the duration of
/// the run: everything the window loop touches per tick, dense and
/// shard-owned. Cold config stays in the `LinkState` shell.
#[derive(Debug)]
struct SLink {
    gid: u32,
    to: u32,
    pump: SPump,
    params: Link,
    loss_rng: Xoshiro256StarStar,
    next_send: Time,
    exhausted: bool,
    packets_sent: u64,
    packets_lost: u64,
    packets_delivered: u64,
    bytes_sent: u64,
    bytes_delivered: u64,
}

/// One send opportunity executed during generation — the unit of
/// optimistic work, carrying everything needed to commit it (assign
/// its arrival a seq) or roll it back (restore the cadence/counters).
#[derive(Debug)]
struct SendRec {
    time: Time,
    gid: u32,
    /// The link's `next_send` before this opportunity executed.
    prev_next_send: Time,
    kind: RecKind,
}

#[derive(Debug)]
enum RecKind {
    Packet {
        recoded: bool,
        lost: bool,
        latency: Time,
        frame_len: u64,
        /// Component ids, as a slice of the shard's window arena.
        ids: Range<u32>,
    },
    /// The pump reported exhaustion at this opportunity (the serial
    /// engine counts the event and retires the link's calendar entry).
    Exhausted,
}

impl SendRec {
    fn key(&self) -> GKey {
        send_key(self.time, self.gid)
    }
}

/// One delivery due inside the current window, keyed for the global
/// order and sorted by `(node, key)` so each node's deliveries form a
/// contiguous run.
#[derive(Debug)]
struct Item {
    node: u32,
    gid: u32,
    key: GKey,
    applied: bool,
    src: ItemSrc,
}

#[derive(Debug)]
enum ItemSrc {
    /// An old queue event. `dead` marks a link torn down while this
    /// packet was in flight: the serial engine still counts the event
    /// but delivers nothing.
    Old {
        seq: u64,
        recoded: bool,
        dead: bool,
        ids: Vec<SymbolId>,
    },
    /// A send staged this window (index into `ShardState::recs`).
    /// Zero-latency sends deliver at their send key; latent ones at
    /// their staged-arrival key.
    Staged { rec: u32 },
}

/// Everything one worker shard owns: its node range, its links (all
/// links whose destination falls in the range), their calendar, the
/// carried-over arrival queue, and per-window scratch.
#[derive(Debug)]
struct ShardState {
    /// Global index of the first node this shard owns.
    base: u32,
    links: Vec<SLink>,
    /// Send calendar: `(next_send, gid)` per live non-exhausted link.
    /// Popping in `(time, gid)` order is the serial link-scan order.
    /// Never contains stale entries (topology is frozen during a run).
    cal: BinaryHeap<Reverse<(Time, u32)>>,
    /// Arrivals with assigned seqs waiting for their window.
    queue: BinaryHeap<Reverse<QEvent>>,
    /// Observers in this shard's range still short of their target.
    incomplete: usize,
    // --- per-window scratch ---
    recs: Vec<SendRec>,
    arena: Vec<SymbolId>,
    items: Vec<Item>,
    /// Completion keys found by the probe pass (one per observer that
    /// reached its target inside this window).
    kns: Vec<GKey>,
    /// Committed-event count and latest committed tick, filled by the
    /// commit pass.
    window_events: u64,
    window_max_time: Time,
    scratch: PacketScratch,
    /// Wall-clock busy time of this shard's last generate/commit pass,
    /// measured only when a profiler is installed. Performance
    /// telemetry only — never part of any deterministic output.
    busy_ns: u64,
}

impl ShardState {
    /// Earliest tick at which this shard has anything to do. Exact:
    /// the calendar holds no stale entries.
    fn next_time(&self) -> Option<Time> {
        let send = self.cal.peek().map(|&Reverse((t, _))| t);
        let arrival = self.queue.peek().map(|Reverse(ev)| ev.time);
        match (send, arrival) {
            (Some(s), Some(a)) => Some(s.min(a)),
            (s, a) => s.or(a),
        }
    }

    /// Window phases 1+2: pump the calendar through `[.., t1)`, stage
    /// sends and deliveries, then probe each incomplete observer's
    /// completion key by applying its deliveries in order.
    #[allow(clippy::too_many_lines)]
    fn generate(
        &mut self,
        t1: Time,
        nodes: &mut [NodeState],
        link_to: &[u32],
        link_alive: &[bool],
        link_pos: &[u32],
        payload_bytes: usize,
    ) {
        self.recs.clear();
        self.arena.clear();
        self.items.clear();
        self.kns.clear();
        self.window_events = 0;
        self.window_max_time = 0;
        // Old arrivals due inside the window.
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.time >= t1 {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked");
            self.items.push(Item {
                node: link_to[ev.gid as usize],
                gid: ev.gid,
                key: old_key(ev.time, ev.seq),
                applied: false,
                src: ItemSrc::Old {
                    seq: ev.seq,
                    recoded: ev.recoded,
                    dead: !link_alive[ev.gid as usize],
                    ids: ev.ids,
                },
            });
        }
        // Send opportunities due inside the window, in (tick, link)
        // order — the serial scan order, which fixes each link's pump
        // and loss-RNG draw sequence exactly.
        while let Some(&Reverse((due, gid))) = self.cal.peek() {
            if due >= t1 {
                break;
            }
            self.cal.pop();
            let link = &mut self.links[link_pos[gid as usize] as usize];
            debug_assert!(!link.exhausted, "calendar holds live links only");
            if !link.pump.next_packet_into(&mut self.scratch) {
                link.exhausted = true;
                self.recs.push(SendRec {
                    time: due,
                    gid,
                    prev_next_send: link.next_send,
                    kind: RecKind::Exhausted,
                });
                continue;
            }
            link.packets_sent += 1;
            let recoded = self.scratch.is_recoded();
            let frame_len = if recoded {
                recoded_symbol_frame_len(self.scratch.ids().len(), payload_bytes)
            } else {
                encoded_symbol_frame_len(payload_bytes)
            } as u64;
            link.bytes_sent += frame_len;
            let prev_next_send = link.next_send;
            link.next_send = due + link.params.interval;
            let latency = link.params.latency;
            let lost = link.params.loss > 0.0 && {
                let draw = (link.loss_rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                draw < link.params.loss
            };
            if lost {
                link.packets_lost += 1;
            }
            self.cal.push(Reverse((link.next_send, gid)));
            let start = u32::try_from(self.arena.len()).expect("arena overflow");
            self.arena.extend_from_slice(self.scratch.ids());
            let end = u32::try_from(self.arena.len()).expect("arena overflow");
            let rec = u32::try_from(self.recs.len()).expect("rec overflow");
            let to = link.to;
            self.recs.push(SendRec {
                time: due,
                gid,
                prev_next_send,
                kind: RecKind::Packet {
                    recoded,
                    lost,
                    latency,
                    frame_len,
                    ids: start..end,
                },
            });
            if !lost {
                if latency == 0 {
                    self.items.push(Item {
                        node: to,
                        gid,
                        key: send_key(due, gid),
                        applied: false,
                        src: ItemSrc::Staged { rec },
                    });
                } else if due + latency < t1 {
                    self.items.push(Item {
                        node: to,
                        gid,
                        key: staged_key(due + latency, due, gid),
                        applied: false,
                        src: ItemSrc::Staged { rec },
                    });
                }
                // Arrivals at or past t1 are committed to the queue at
                // the barrier, once their seq is assigned.
            }
        }
        self.items.sort_unstable_by_key(|x| (x.node, x.key));
        // Probe: per incomplete observer, deliveries apply in order
        // until completion. These effects are final (k_n ≤ K always).
        let mut i = 0;
        while i < self.items.len() {
            let node = self.items[i].node;
            let mut j = i;
            while j < self.items.len() && self.items[j].node == node {
                j += 1;
            }
            let idx = (node - self.base) as usize;
            if nodes[idx].observer && !nodes[idx].receiver.is_complete() {
                for at in i..j {
                    self.apply_item(at, nodes, link_pos, payload_bytes);
                    self.items[at].applied = true;
                    if nodes[idx].receiver.is_complete() {
                        self.kns.push(self.items[at].key);
                        break;
                    }
                }
            }
            i = j;
        }
    }

    /// Window phase 4: apply the remaining deliveries at or below the
    /// cut, roll back sends beyond it, account committed events, and
    /// requeue old arrivals beyond the cut.
    fn commit(
        &mut self,
        k: GKey,
        nodes: &mut [NodeState],
        link_pos: &[u32],
        payload_bytes: usize,
    ) {
        for i in 0..self.items.len() {
            if self.items[i].applied || self.items[i].key > k {
                continue;
            }
            self.apply_item(i, nodes, link_pos, payload_bytes);
            self.items[i].applied = true;
        }
        // Roll back uncommitted sends in reverse so a link with several
        // ends at the cadence of its *earliest* rolled-back opportunity.
        for rec in self.recs.iter().rev() {
            if rec.key() <= k {
                break; // recs are in key order; the rest committed
            }
            let link = &mut self.links[link_pos[rec.gid as usize] as usize];
            link.next_send = rec.prev_next_send;
            match &rec.kind {
                RecKind::Packet {
                    lost, frame_len, ..
                } => {
                    link.packets_sent -= 1;
                    link.bytes_sent -= frame_len;
                    if *lost {
                        link.packets_lost -= 1;
                    }
                }
                RecKind::Exhausted => link.exhausted = false,
            }
        }
        // Committed-event accounting: every old arrival and every
        // latent staged arrival at or below the cut is one event, as is
        // every send record (exhaustion discoveries included).
        // Zero-latency deliveries ride their send's event.
        for item in &self.items {
            if item.key > k {
                continue;
            }
            let counts = match &item.src {
                ItemSrc::Old { .. } => true,
                ItemSrc::Staged { rec } => matches!(
                    &self.recs[*rec as usize].kind,
                    RecKind::Packet { latency, .. } if *latency > 0
                ),
            };
            if counts {
                self.window_events += 1;
                self.window_max_time = self.window_max_time.max(item.key.time);
            }
        }
        for rec in &self.recs {
            if rec.key() <= k {
                self.window_events += 1;
                self.window_max_time = self.window_max_time.max(rec.time);
            }
        }
        // Old arrivals beyond the cut go back to the queue untouched.
        for item in self.items.drain(..) {
            if item.key > k {
                if let ItemSrc::Old {
                    seq, recoded, ids, ..
                } = item.src
                {
                    self.queue.push(Reverse(QEvent {
                        time: item.key.time,
                        seq,
                        gid: item.gid,
                        recoded,
                        ids,
                    }));
                }
            }
        }
        self.incomplete -= self.kns.len();
    }

    /// Delivers one item: link delivery counters plus the receiver
    /// ingest path — byte-identical to the serial engine's
    /// `process_arrival`/`deliver_scratch`.
    fn apply_item(
        &mut self,
        i: usize,
        nodes: &mut [NodeState],
        link_pos: &[u32],
        payload_bytes: usize,
    ) {
        let node = (self.items[i].node - self.base) as usize;
        let gid = self.items[i].gid as usize;
        match &self.items[i].src {
            ItemSrc::Old { dead: true, .. } => {} // in-flight on a cut link: gone
            ItemSrc::Old {
                recoded, ids, ..
            } => {
                let frame_len = if *recoded {
                    recoded_symbol_frame_len(ids.len(), payload_bytes)
                } else {
                    encoded_symbol_frame_len(payload_bytes)
                } as u64;
                let link = &mut self.links[link_pos[gid] as usize];
                link.packets_delivered += 1;
                link.bytes_delivered += frame_len;
                let st = &mut nodes[node];
                if st.receiver.receive_ids(*recoded, ids) > 0 {
                    st.card = None;
                }
            }
            ItemSrc::Staged { rec } => {
                let RecKind::Packet {
                    recoded,
                    frame_len,
                    ids,
                    ..
                } = &self.recs[*rec as usize].kind
                else {
                    unreachable!("staged items reference packet records")
                };
                let link = &mut self.links[link_pos[gid] as usize];
                link.packets_delivered += 1;
                link.bytes_delivered += frame_len;
                let ids = &self.arena[ids.start as usize..ids.end as usize];
                let st = &mut nodes[node];
                if st.receiver.receive_ids(*recoded, ids) > 0 {
                    st.card = None;
                }
            }
        }
    }
}

/// Splits the node table into the partition's disjoint mutable slices.
fn split_ranges<'a>(
    mut nodes: &'a mut [NodeState],
    ranges: &[Range<usize>],
) -> Vec<&'a mut [NodeState]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut offset = 0;
    for r in ranges {
        let (head, tail) = nodes.split_at_mut(r.end - offset);
        out.push(head);
        nodes = tail;
        offset = r.end;
    }
    out
}

/// Runs the net on the sharded executor. Caller guarantees
/// eligibility (packet links only, no frame tap); output — node state,
/// every counter, the event queue, seq, clock, and stop reason — is
/// byte-identical to the serial `OverlayNet::run`.
pub(super) fn run_sharded(net: &mut OverlayNet<'_>, limit: RunLimit) -> StopReason {
    if net.observers_complete() {
        return StopReason::Completed;
    }
    let shard_count = net.shards.min(net.nodes.len()).max(1);

    // Degree-balanced partition: a node's weight approximates the event
    // rate its in-links generate. Performance-only — never output.
    let mut weights = vec![1u64; net.nodes.len()];
    for link in &net.links {
        if link.alive && !link.exhausted {
            weights[link.to.0] += 4096 / link.params.interval.clamp(1, 4096);
        }
    }
    let ranges = balanced_ranges(&weights, shard_count);

    // Side tables (read-only during the run; topology is frozen).
    let link_to: Vec<u32> = net.links.iter().map(|l| l.to.0 as u32).collect();
    let link_alive: Vec<bool> = net.links.iter().map(|l| l.alive).collect();
    let mut link_pos = vec![u32::MAX; net.links.len()];

    // Extract hot link state into shard-owned arrays (dead links keep
    // their shells: they can only be the target of in-flight events,
    // which deliver nothing).
    let mut shards: Vec<ShardState> = ranges
        .iter()
        .map(|r| ShardState {
            base: r.start as u32,
            links: Vec::new(),
            cal: BinaryHeap::new(),
            queue: BinaryHeap::new(),
            incomplete: 0,
            recs: Vec::new(),
            arena: Vec::new(),
            items: Vec::new(),
            kns: Vec::new(),
            window_events: 0,
            window_max_time: 0,
            scratch: PacketScratch::new(),
            busy_ns: 0,
        })
        .collect();
    for (gid, link) in net.links.iter_mut().enumerate() {
        if !link.alive {
            continue;
        }
        let owner = owner_of(&ranges, link.to.0);
        let pump = match std::mem::replace(
            &mut link.source,
            LinkSource::Fountain(FullSender::new(0)),
        ) {
            LinkSource::Strategy(s) => SPump::Strategy(s),
            LinkSource::Fountain(f) => SPump::Fountain(f),
            _ => unreachable!("gated: sharded nets hold packet links only"),
        };
        let shard = &mut shards[owner];
        link_pos[gid] = u32::try_from(shard.links.len()).expect("shard link overflow");
        if !link.exhausted {
            shard.cal.push(Reverse((link.next_send, gid as u32)));
        }
        shard.links.push(SLink {
            gid: gid as u32,
            to: link.to.0 as u32,
            pump,
            params: link.params,
            loss_rng: link.loss_rng.clone(),
            next_send: link.next_send,
            exhausted: link.exhausted,
            packets_sent: link.packets_sent,
            packets_lost: link.packets_lost,
            packets_delivered: link.packets_delivered,
            bytes_sent: link.bytes_sent,
            bytes_delivered: link.bytes_delivered,
        });
    }
    // The global send calendar is rebuilt at exit (one live entry per
    // live link — the engine's standing invariant); drop it now.
    net.send_queue.clear();
    // Route pending arrivals to their destination shards.
    while let Some(Reverse(ev)) = net.queue.pop() {
        let Event {
            time,
            seq,
            link,
            kind,
        } = ev;
        let EventKind::Packet { recoded, ids } = kind else {
            unreachable!("gated: no session links, so no frame events")
        };
        let owner = owner_of(&ranges, link_to[link.0] as usize);
        shards[owner].queue.push(Reverse(QEvent {
            time,
            seq,
            gid: link.0 as u32,
            recoded,
            ids,
        }));
    }
    for (shard, r) in shards.iter_mut().zip(&ranges) {
        shard.incomplete = net.nodes[r.clone()]
            .iter()
            .filter(|n| n.observer && !n.receiver.is_complete())
            .count();
    }

    let mut nodes = std::mem::take(&mut net.nodes);
    let payload_bytes = net.payload_bytes;
    let mut now = net.now;
    let mut seq = net.seq;
    let mut events = net.events_processed;
    let mut incomplete = net.incomplete_observers;
    let tracer = net.tracer.clone();
    // Wall-clock phase profiling (outside the parity domain): scope
    // walls on the main thread, per-shard busy time in the workers; the
    // barrier residue is wall minus the slowest shard's busy time.
    let profiler = net.profiler.clone();
    let profiling = profiler.is_some();

    let stop = loop {
        let Some(t0) = shards.iter().filter_map(ShardState::next_time).min() else {
            // Permanently quiescent — the serial engine's stall, with
            // the same empty-roster clock special case.
            if now == 0 {
                now = 1;
            }
            break StopReason::Stalled;
        };
        debug_assert!(t0 > now, "cadence/queue must move forward");
        if let Some(stop) = limit.stop_before {
            if t0 >= stop {
                break StopReason::Paused;
            }
        }
        if t0 > limit.max_ticks {
            now = limit.max_ticks.max(now);
            break StopReason::MaxTicks;
        }
        let mut t1 = t0.saturating_add(WINDOW);
        if let Some(stop) = limit.stop_before {
            t1 = t1.min(stop);
        }
        t1 = t1.min(limit.max_ticks.saturating_add(1));

        // Phases 1+2: generate and probe, one worker per shard.
        let phase_start = profiling.then(Instant::now);
        std::thread::scope(|scope| {
            let link_to = &link_to;
            let link_alive = &link_alive;
            let link_pos = &link_pos;
            for (shard, slice) in shards.iter_mut().zip(split_ranges(&mut nodes, &ranges)) {
                scope.spawn(move || {
                    let busy = profiling.then(Instant::now);
                    shard.generate(t1, slice, link_to, link_alive, link_pos, payload_bytes);
                    if let Some(busy) = busy {
                        shard.busy_ns = busy.elapsed().as_nanos() as u64;
                    }
                });
            }
        });
        if let (Some(start), Some(prof)) = (phase_start, &profiler) {
            record_scope(prof, "shard_generate", "shard_generate_barrier", start, &shards);
        }

        // Phase 3 (main thread): agree on the cut.
        let phase_start = profiling.then(Instant::now);
        let total_incomplete: usize = shards.iter().map(|s| s.incomplete).sum();
        debug_assert_eq!(total_incomplete, incomplete, "observer accounting drift");
        let finite: usize = shards.iter().map(|s| s.kns.len()).sum();
        let k = if total_incomplete > 0 && finite == total_incomplete {
            shards
                .iter()
                .flat_map(|s| s.kns.iter().copied())
                .max()
                .expect("finite > 0")
        } else {
            KEY_MAX
        };
        merge_and_assign_seqs(&mut shards, t1, k, &mut seq);
        if let (Some(start), Some(prof)) = (phase_start, &profiler) {
            prof.borrow_mut()
                .record("shard_merge", start.elapsed().as_nanos() as u64);
        }

        // Phase 4: commit, one worker per shard.
        let phase_start = profiling.then(Instant::now);
        std::thread::scope(|scope| {
            let link_pos = &link_pos;
            for (shard, slice) in shards.iter_mut().zip(split_ranges(&mut nodes, &ranges)) {
                scope.spawn(move || {
                    let busy = profiling.then(Instant::now);
                    shard.commit(k, slice, link_pos, payload_bytes);
                    if let Some(busy) = busy {
                        shard.busy_ns = busy.elapsed().as_nanos() as u64;
                    }
                });
            }
        });
        if let (Some(start), Some(prof)) = (phase_start, &profiler) {
            record_scope(prof, "shard_commit", "shard_commit_barrier", start, &shards);
        }

        // Replay the window's committed sends into the trace in global
        // `(tick, link)` order — exactly the order the serial engine
        // emitted them — so traces stay byte-identical at any shard
        // count. Rolled-back sends (key > K) never happened serially
        // and are skipped; so are exhaustion discoveries, which the
        // serial path does not trace either.
        if let Some(tracer) = &tracer {
            emit_window_trace(tracer, &shards, k);
        }

        events += shards.iter().map(|s| s.window_events).sum::<u64>();
        incomplete -= finite;
        if k < KEY_MAX {
            now = k.time;
            break StopReason::Completed;
        }
        now = now.max(
            shards
                .iter()
                .map(|s| s.window_max_time)
                .max()
                .unwrap_or(now),
        );
    };

    // Exit merge: restore node/link ownership, rebuild the global
    // queues, and write the scalars back. Byte-identical to the state
    // the serial engine would have left.
    net.nodes = nodes;
    for shard in &mut shards {
        for sl in shard.links.drain(..) {
            let link = &mut net.links[sl.gid as usize];
            link.source = match sl.pump {
                SPump::Strategy(s) => LinkSource::Strategy(s),
                SPump::Fountain(f) => LinkSource::Fountain(f),
            };
            link.loss_rng = sl.loss_rng;
            link.next_send = sl.next_send;
            link.exhausted = sl.exhausted;
            link.packets_sent = sl.packets_sent;
            link.packets_lost = sl.packets_lost;
            link.packets_delivered = sl.packets_delivered;
            link.bytes_sent = sl.bytes_sent;
            link.bytes_delivered = sl.bytes_delivered;
        }
        while let Some(Reverse(ev)) = shard.queue.pop() {
            net.queue.push(Reverse(Event {
                time: ev.time,
                seq: ev.seq,
                link: LinkId(ev.gid as usize),
                kind: EventKind::Packet {
                    recoded: ev.recoded,
                    ids: ev.ids,
                },
            }));
        }
    }
    for (gid, link) in net.links.iter().enumerate() {
        if link.alive && !link.exhausted {
            net.send_queue.push(Reverse((link.next_send, gid as u32)));
        }
    }
    net.now = now;
    net.seq = seq;
    net.events_processed = events;
    net.incomplete_observers = incomplete;
    stop
}

/// The deterministic cross-shard merge (phase 3): walks every
/// committed latent send in `(send tick, link)` order — each shard's
/// records are already in that order, so this is a k-way merge — and
/// assigns sequence numbers exactly as the serial engine's
/// `schedule_arrival` would have. Arrivals landing inside the window
/// at or below the cut were already delivered as staged items and only
/// consume their seq; the rest become ordinary queue events.
fn merge_and_assign_seqs(shards: &mut [ShardState], t1: Time, k: GKey, seq: &mut u64) {
    // Per shard: indices of committed latent sends, in order.
    let eligible: Vec<Vec<u32>> = shards
        .iter()
        .map(|s| {
            s.recs
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    r.key() <= k
                        && matches!(
                            r.kind,
                            RecKind::Packet {
                                lost: false,
                                latency: 1..,
                                ..
                            }
                        )
                })
                .map(|(i, _)| u32::try_from(i).expect("rec overflow"))
                .collect()
        })
        .collect();
    let mut cursors = vec![0usize; shards.len()];
    // (shard, rec index, seq) for arrivals that must requeue.
    let mut requeue: Vec<(usize, u32, u64)> = Vec::new();
    loop {
        let mut best: Option<(Time, u32, usize)> = None;
        for (s, list) in eligible.iter().enumerate() {
            if let Some(&ri) = list.get(cursors[s]) {
                let rec = &shards[s].recs[ri as usize];
                let cand = (rec.time, rec.gid, s);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        let Some((_, _, s)) = best else { break };
        let ri = eligible[s][cursors[s]];
        cursors[s] += 1;
        let assigned = *seq;
        *seq += 1;
        let rec = &shards[s].recs[ri as usize];
        let RecKind::Packet { latency, .. } = rec.kind else {
            unreachable!("eligible records are packets")
        };
        let arrival = rec.time + latency;
        let delivered_in_window =
            arrival < t1 && staged_key(arrival, rec.time, rec.gid) <= k;
        if !delivered_in_window {
            requeue.push((s, ri, assigned));
        }
    }
    for (s, ri, assigned) in requeue {
        let shard = &mut shards[s];
        let rec = &shard.recs[ri as usize];
        let RecKind::Packet {
            recoded,
            latency,
            ref ids,
            ..
        } = rec.kind
        else {
            unreachable!("eligible records are packets")
        };
        shard.queue.push(Reverse(QEvent {
            time: rec.time + latency,
            seq: assigned,
            gid: rec.gid,
            recoded,
            ids: shard.arena[ids.start as usize..ids.end as usize].to_vec(),
        }));
    }
}

/// Records one parallel scope into the profiler: the scope's wall time
/// under `phase`, and the barrier residue — wall minus the slowest
/// shard's busy time — under `barrier`. The residue is what the main
/// thread spent waiting on thread startup and imbalance rather than on
/// shard work itself.
fn record_scope(
    prof: &ProfileHandle,
    phase: &'static str,
    barrier: &'static str,
    start: Instant,
    shards: &[ShardState],
) {
    let wall = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let busy = shards.iter().map(|s| s.busy_ns).max().unwrap_or(0);
    let mut prof = prof.borrow_mut();
    prof.record(phase, wall);
    prof.record(barrier, wall.saturating_sub(busy));
}

/// Replays the window's committed sends into the trace in global
/// `(send tick, link)` order — the same k-way merge as
/// [`merge_and_assign_seqs`], but over *every* committed packet record
/// (lost and zero-latency sends included: the serial engine traces
/// those too, since they consume send slots). Rolled-back records
/// (key > K) and exhaustion discoveries are excluded, matching what
/// the serial path would have emitted tick for tick.
fn emit_window_trace(tracer: &TraceHandle, shards: &[ShardState], k: GKey) {
    let eligible: Vec<Vec<u32>> = shards
        .iter()
        .map(|s| {
            s.recs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.key() <= k && matches!(r.kind, RecKind::Packet { .. }))
                .map(|(i, _)| u32::try_from(i).expect("rec overflow"))
                .collect()
        })
        .collect();
    let mut cursors = vec![0usize; shards.len()];
    let mut buf = tracer.borrow_mut();
    loop {
        let mut best: Option<(Time, u32, usize)> = None;
        for (s, list) in eligible.iter().enumerate() {
            if let Some(&ri) = list.get(cursors[s]) {
                let rec = &shards[s].recs[ri as usize];
                let cand = (rec.time, rec.gid, s);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
            }
        }
        let Some((_, _, s)) = best else { break };
        let ri = eligible[s][cursors[s]];
        cursors[s] += 1;
        let rec = &shards[s].recs[ri as usize];
        let RecKind::Packet {
            recoded,
            lost,
            frame_len,
            ref ids,
            ..
        } = rec.kind
        else {
            unreachable!("eligible records are packets")
        };
        buf.push(
            rec.time,
            TraceEvent::LinkSend {
                link: u64::from(rec.gid),
                recoded,
                lost,
                components: u64::from(ids.end - ids.start),
                frame_len,
            },
        );
    }
}
