//! The sender strategies of §6.2, generalized over summary mechanisms.
//!
//! The paper presents five strategies; the two informed ones use a Bloom
//! filter. Here the informed strategies are parameterized by
//! [`SummaryId`], so *any* mechanism registered in the peers'
//! [`SummaryRegistry`] — Bloom, ART, whole-set, hash-set, char-poly —
//! can drive them, and the experiment grid can sweep mechanisms as a
//! strategy axis:
//!
//! * **Random** — "The transmitting node randomly picks an available
//!   symbol to send. This simple strategy is used by Swarmcast." Uniform
//!   with replacement: the sender is stateless per packet, the honest
//!   reading of an uninformed gossip sender (and what produces the
//!   coupon-collector behaviour the paper highlights).
//! * **Random/summary** — the paper's Random/BF with a pluggable digest:
//!   the receiver's encoded summary frame is decoded through the
//!   registry, and the resulting `Reconciler` yields the candidate list
//!   the sender walks in random order without repetition (resending a
//!   symbol the digest already cleared would be pure waste the sender
//!   can avoid for free); the digest is never updated mid-transfer, as
//!   in §6.1.
//! * **Recode** — recoded symbols over the sender's *entire* working set
//!   with the capped degree distribution (degree limit 50, §6.1).
//! * **Recode/summary** — the paper's Recode/BF, likewise generalized:
//!   recoding restricted to the digest-cleared candidates, with the
//!   recoding *domain* capped near the receiver's request ("we restrict
//!   the recoding domain to an appropriate small size", §6.1).
//! * **Recode/MW** — recoded symbols over the entire working set with
//!   degrees scaled by 1/(1−c), c estimated from exchanged min-wise
//!   sketches.

use icd_fountain::{RecodePolicy, RecodeScratch, Recoder};
use icd_sketch::{MinwiseSketch, PermutationFamily};
use icd_summary::{DiffEstimate, SummaryId, SummaryRegistry, SummarySizing};
use icd_util::rng::{Rng64, Xoshiro256StarStar};

use crate::SymbolId;

/// One packet on the data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// A plain encoded symbol, identified by id.
    Encoded(SymbolId),
    /// A recoded symbol: XOR of the listed encoded symbols.
    Recoded(Vec<SymbolId>),
}

impl Packet {
    /// True framed wire size of this packet carrying a `block_size`
    /// payload: the exact `write_frame_buf` length of the corresponding
    /// `icd-wire` message (length prefix included). Delegates to the
    /// closed forms pinned against the real encoder in `icd-wire`, so
    /// byte-accounting ablations can never drift from the wire again —
    /// the old hand-rolled header arithmetic here undercounted every
    /// packet by 9–11 bytes (missing the frame prefix, tag, and count
    /// fields).
    #[must_use]
    pub fn wire_size(&self, block_size: usize) -> usize {
        match self {
            Packet::Encoded(_) => icd_wire::encoded_symbol_frame_len(block_size),
            Packet::Recoded(c) => icd_wire::recoded_symbol_frame_len(c.len(), block_size),
        }
    }
}

/// A reusable packet buffer for the tick loop: one of these lives for a
/// whole simulated transfer, so emitting a packet allocates nothing —
/// the component list is rewritten in place each tick.
#[derive(Debug, Clone, Default)]
pub struct PacketScratch {
    recoded: bool,
    ids: Vec<SymbolId>,
}

impl PacketScratch {
    /// An empty scratch buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the held packet is recoded.
    #[must_use]
    pub fn is_recoded(&self) -> bool {
        self.recoded
    }

    /// The held packet's symbol ids: the single encoded id, or the
    /// recoded component list.
    #[must_use]
    pub fn ids(&self) -> &[SymbolId] {
        &self.ids
    }

    /// Materializes an owning [`Packet`] (allocates; tests and
    /// non-hot-path callers only).
    #[must_use]
    pub fn to_packet(&self) -> Packet {
        if self.recoded {
            Packet::Recoded(self.ids.clone())
        } else {
            Packet::Encoded(self.ids[0])
        }
    }

    fn set_encoded(&mut self, id: SymbolId) {
        self.recoded = false;
        self.ids.clear();
        self.ids.push(id);
    }

    fn set_recoded(&mut self, components: &[SymbolId]) {
        self.recoded = true;
        self.ids.clear();
        self.ids.extend_from_slice(components);
    }
}

/// Which sender strategy a connection runs. The informed strategies name
/// their summary mechanism by registry id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Uninformed uniform selection (Swarmcast baseline).
    Random,
    /// Random selection filtered through the receiver's digest
    /// (the paper's Random/BF when the id is [`SummaryId::BLOOM`]).
    RandomSummary(SummaryId),
    /// Oblivious recoding over the whole working set.
    Recode,
    /// Recoding restricted to digest-cleared candidates (the paper's
    /// Recode/BF when the id is [`SummaryId::BLOOM`]).
    RecodeSummary(SummaryId),
    /// Recoding with min-wise-estimated degree scaling.
    RecodeMinwise,
}

impl StrategyKind {
    /// The paper's five strategies in presentation order (the informed
    /// ones Bloom-backed, as in §6.2).
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Random,
        StrategyKind::RandomSummary(SummaryId::BLOOM),
        StrategyKind::Recode,
        StrategyKind::RecodeSummary(SummaryId::BLOOM),
        StrategyKind::RecodeMinwise,
    ];

    /// The label used in the paper's figure legends (mechanism-suffixed
    /// for non-Bloom digests, e.g. `Random/CPI`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::Random => "Random",
            StrategyKind::RandomSummary(id) => random_label(*id),
            StrategyKind::Recode => "Recode",
            StrategyKind::RecodeSummary(id) => recode_label(*id),
            StrategyKind::RecodeMinwise => "Recode/MW",
        }
    }

    /// The summary mechanism this strategy ships, if any.
    #[must_use]
    pub fn summary_id(&self) -> Option<SummaryId> {
        match self {
            StrategyKind::RandomSummary(id) | StrategyKind::RecodeSummary(id) => Some(*id),
            _ => None,
        }
    }

    /// Whether the strategy needs a receiver digest in the handshake.
    #[must_use]
    pub fn needs_summary(&self) -> bool {
        self.summary_id().is_some()
    }

    /// Whether the strategy needs min-wise sketches.
    #[must_use]
    pub fn needs_sketch(&self) -> bool {
        matches!(self, StrategyKind::RecodeMinwise)
    }
}

/// Figure-legend suffix per mechanism; the `(prefix, id)` pairs below
/// keep the labels `&'static str` without a second id→name table.
const SUMMARY_SUFFIXES: [(SummaryId, &str, &str); 5] = [
    (SummaryId::BLOOM, "Random/BF", "Recode/BF"),
    (SummaryId::ART, "Random/ART", "Recode/ART"),
    (SummaryId::WHOLE_SET, "Random/WS", "Recode/WS"),
    (SummaryId::HASH_SET, "Random/HS", "Recode/HS"),
    (SummaryId::CHAR_POLY, "Random/CPI", "Recode/CPI"),
];

fn random_label(id: SummaryId) -> &'static str {
    SUMMARY_SUFFIXES
        .iter()
        .find(|(known, _, _)| *known == id)
        .map_or("Random/?", |(_, random, _)| random)
}

fn recode_label(id: SummaryId) -> &'static str {
    SUMMARY_SUFFIXES
        .iter()
        .find(|(known, _, _)| *known == id)
        .map_or("Recode/?", |(_, _, recode)| recode)
}

/// What the receiver hands a sender at connection setup (the one-shot
/// control exchange of §6.1; never updated during the transfer). The
/// digest travels *encoded*, exactly as it would on the wire: the sender
/// decodes it through its registry, so the simulator exercises the same
/// frame path as the session machines.
#[derive(Debug, Clone, Default)]
pub struct ReceiverHandshake {
    /// Encoded summary frame `(mechanism id, body bytes)`.
    pub summary: Option<(SummaryId, Vec<u8>)>,
    /// Min-wise sketch of the receiver's working set (MW strategy).
    pub sketch: Option<MinwiseSketch>,
}

impl ReceiverHandshake {
    /// Builds the handshake a receiver with `working_set` would send,
    /// providing whatever `strategy` requires. `sizing` and `estimate`
    /// parameterize the digest exactly as in the session layer;
    /// `registry` must hold the strategy's mechanism.
    ///
    /// Panics if the strategy names a mechanism absent from `registry` —
    /// a configuration error, not a runtime condition.
    #[must_use]
    pub fn for_strategy(
        strategy: StrategyKind,
        working_set: &[SymbolId],
        sizing: &SummarySizing,
        family: &PermutationFamily,
        registry: &SummaryRegistry,
        estimate: &DiffEstimate,
    ) -> Self {
        Self::for_strategy_with(strategy, working_set, sizing, family, registry, estimate, None)
    }

    /// [`ReceiverHandshake::for_strategy`] with the receiver's standing
    /// min-wise sketch supplied by the caller (§4's calling card,
    /// computed once per working-set state — e.g. cached on a scenario)
    /// instead of rebuilt per connection. Pass `None` to compute it
    /// here; the sketch is only consulted when the strategy needs one.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn for_strategy_with(
        strategy: StrategyKind,
        working_set: &[SymbolId],
        sizing: &SummarySizing,
        family: &PermutationFamily,
        registry: &SummaryRegistry,
        estimate: &DiffEstimate,
        calling_card: Option<&MinwiseSketch>,
    ) -> Self {
        let summary = strategy.summary_id().map(|id| {
            let mut keys = working_set.to_vec();
            keys.sort_unstable();
            let digest = registry
                .build(id, sizing, estimate, &keys)
                .expect("strategy mechanism must be registered");
            (id, digest.encode_body())
        });
        let sketch = strategy.needs_sketch().then(|| {
            calling_card
                .cloned()
                .unwrap_or_else(|| MinwiseSketch::from_keys(family, working_set.iter().copied()))
        });
        Self { summary, sketch }
    }

    /// Encoded digest size in bytes (0 without one) — the handshake cost
    /// ablations account against transfer savings.
    #[must_use]
    pub fn summary_bytes(&self) -> usize {
        self.summary.as_ref().map_or(0, |(_, body)| body.len())
    }
}

/// A sender bound to one receiver for the duration of a connection.
#[derive(Debug)]
pub struct Sender {
    kind: StrategyKind,
    working: Vec<SymbolId>,
    /// Random-order candidate queue (summary strategies);
    /// `next_candidate` indexes into it.
    candidates: Vec<SymbolId>,
    next_candidate: usize,
    recoder: Option<Recoder>,
    rng: Xoshiro256StarStar,
    packets_sent: u64,
    recode_scratch: RecodeScratch,
}

impl Sender {
    /// Creates a sender running `kind` over `working` symbols, given the
    /// receiver's handshake. `family` is the protocol-wide permutation
    /// family (for the sender's own sketch under Recode/MW); `registry`
    /// decodes the handshake digest. `request_hint` is the number of
    /// symbols the receiver asked this sender for (§6.1); recode-summary
    /// strategies use it to size their recoding domain.
    ///
    /// Panics if the working set is empty or if the handshake lacks what
    /// the strategy requires — both are protocol violations, not runtime
    /// conditions.
    #[must_use]
    pub fn new(
        kind: StrategyKind,
        working: Vec<SymbolId>,
        handshake: &ReceiverHandshake,
        family: &PermutationFamily,
        registry: &SummaryRegistry,
        seed: u64,
        request_hint: usize,
    ) -> Self {
        Self::with_calling_card(kind, working, handshake, family, registry, seed, request_hint, None)
    }

    /// [`Sender::new`] with the sender's own standing min-wise sketch
    /// supplied (its §4 calling card — a function of `working`, cached
    /// by the caller across connections) instead of rebuilt here. Pass
    /// `None` to compute it; only Recode/MW consults it.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn with_calling_card(
        kind: StrategyKind,
        working: Vec<SymbolId>,
        handshake: &ReceiverHandshake,
        family: &PermutationFamily,
        registry: &SummaryRegistry,
        seed: u64,
        request_hint: usize,
        calling_card: Option<&MinwiseSketch>,
    ) -> Self {
        assert!(!working.is_empty(), "sender needs a non-empty working set");
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut candidates = Vec::new();
        let mut next_candidate = 0;
        let mut recoder = None;
        match kind {
            StrategyKind::Random => {}
            StrategyKind::RandomSummary(_) => {
                candidates = cleared_candidates(kind, &working, handshake, registry);
                rng.shuffle(&mut candidates);
                next_candidate = 0;
            }
            StrategyKind::Recode => {
                recoder = Some(Recoder::from_ids(
                    working.clone(),
                    icd_fountain::recode::PAPER_DEGREE_LIMIT,
                    RecodePolicy::Oblivious,
                ));
            }
            StrategyKind::RecodeSummary(_) => {
                candidates = cleared_candidates(kind, &working, handshake, registry);
                if !candidates.is_empty() {
                    // Restrict the recoding domain to what the receiver
                    // asked for (plus recode-layer decoding headroom);
                    // recoding over every candidate would force the
                    // receiver to collect the whole candidate fountain.
                    let domain_size = (request_hint + request_hint / 10 + 8)
                        .min(candidates.len())
                        .max(1);
                    rng.shuffle(&mut candidates);
                    let domain = candidates[..domain_size].to_vec();
                    recoder = Some(Recoder::from_ids(
                        domain,
                        icd_fountain::recode::PAPER_DEGREE_LIMIT,
                        RecodePolicy::Oblivious,
                    ));
                }
            }
            StrategyKind::RecodeMinwise => {
                let receiver_sketch = handshake.sketch.as_ref().expect("Recode/MW needs a sketch");
                let own = calling_card
                    .cloned()
                    .unwrap_or_else(|| MinwiseSketch::from_keys(family, working.iter().copied()));
                // c = |A∩B| / |B| with B = this sender: containment of
                // the sender's set in the receiver's (estimate() treats
                // self as A = receiver side; call from receiver sketch).
                let c = receiver_sketch.estimate(&own).containment_of_b();
                recoder = Some(Recoder::from_ids(
                    working.clone(),
                    icd_fountain::recode::PAPER_DEGREE_LIMIT,
                    RecodePolicy::MinwiseScaled { containment: c },
                ));
            }
        }
        Self {
            kind,
            working,
            candidates,
            next_candidate,
            recoder,
            rng,
            packets_sent: 0,
            recode_scratch: RecodeScratch::default(),
        }
    }

    /// The strategy this sender runs.
    #[must_use]
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// Packets emitted so far.
    #[must_use]
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Size of the sender's working set.
    #[must_use]
    pub fn working_set_size(&self) -> usize {
        self.working.len()
    }

    /// Number of symbols the receiver's digest cleared for sending
    /// (summary strategies only; 0 otherwise).
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Emits the next packet, or `None` if this sender can provably
    /// contribute nothing more (a summary sender that exhausted its
    /// candidate list — everything else it holds, the receiver told it
    /// it has).
    pub fn next_packet(&mut self) -> Option<Packet> {
        let mut scratch = PacketScratch::new();
        self.next_packet_into(&mut scratch)
            .then(|| scratch.to_packet())
    }

    /// Emits the next packet into reusable scratch — the tick loop's
    /// allocation-free form of [`Sender::next_packet`]. Returns `false`
    /// (leaving `scratch` stale) when the sender is exhausted.
    pub fn next_packet_into(&mut self, scratch: &mut PacketScratch) -> bool {
        let emitted = match self.kind {
            StrategyKind::Random => {
                let id = self.working[self.rng.index(self.working.len())];
                scratch.set_encoded(id);
                true
            }
            StrategyKind::RandomSummary(_) => {
                if self.next_candidate >= self.candidates.len() {
                    false
                } else {
                    scratch.set_encoded(self.candidates[self.next_candidate]);
                    self.next_candidate += 1;
                    true
                }
            }
            StrategyKind::Recode | StrategyKind::RecodeMinwise => {
                let recoder = self.recoder.as_ref().expect("recoding sender has a recoder");
                recoder.generate_into(&mut self.rng, &mut self.recode_scratch);
                scratch.set_recoded(&self.recode_scratch.components);
                true
            }
            StrategyKind::RecodeSummary(_) => match self.recoder.as_ref() {
                Some(recoder) => {
                    recoder.generate_into(&mut self.rng, &mut self.recode_scratch);
                    scratch.set_recoded(&self.recode_scratch.components);
                    true
                }
                None => false,
            },
        };
        if emitted {
            self.packets_sent += 1;
        }
        emitted
    }
}

/// Decodes the handshake digest and returns the sorted candidate ids the
/// digest clears — one registry dispatch for every mechanism.
fn cleared_candidates(
    kind: StrategyKind,
    working: &[SymbolId],
    handshake: &ReceiverHandshake,
    registry: &SummaryRegistry,
) -> Vec<SymbolId> {
    let (id, body) = handshake
        .summary
        .as_ref()
        .expect("summary strategy needs a digest in the handshake");
    assert_eq!(Some(*id), kind.summary_id(), "handshake digest mismatch");
    let reconciler = registry
        .decode(*id, body)
        .expect("handshake digest must decode");
    let mut keys = working.to_vec();
    keys.sort_unstable();
    reconciler.missing_at_peer(&keys)
}

/// A *full* sender: holds the whole file and streams fresh encoded
/// symbols from an unbounded universe (the digital fountain). Fresh ids
/// are drawn from a private counter namespace that cannot collide with
/// scenario symbols (which are hashes with the top bit clear).
#[derive(Debug)]
pub struct FullSender {
    next: u64,
    packets_sent: u64,
}

/// Tag bit marking full-sender (fresh fountain) symbol ids.
pub const FRESH_ID_BIT: u64 = 1 << 63;

impl FullSender {
    /// Creates a full sender with its own id namespace (`stream` keeps
    /// multiple full senders disjoint).
    #[must_use]
    pub fn new(stream: u32) -> Self {
        Self {
            next: FRESH_ID_BIT | (u64::from(stream) << 48),
            packets_sent: 0,
        }
    }

    /// Emits the next fresh symbol (always new to every receiver).
    pub fn next_packet(&mut self) -> Packet {
        let mut scratch = PacketScratch::new();
        self.next_packet_into(&mut scratch);
        scratch.to_packet()
    }

    /// [`FullSender::next_packet`] into reusable scratch (a full sender
    /// never exhausts, so this always emits).
    pub fn next_packet_into(&mut self, scratch: &mut PacketScratch) {
        scratch.set_encoded(self.next);
        self.next += 1;
        self.packets_sent += 1;
    }

    /// Packets emitted so far.
    #[must_use]
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_bloom::BloomDigest;
    use icd_recon::shared_registry;
    use std::collections::HashSet;

    fn ids(n: usize, seed: u64) -> Vec<SymbolId> {
        let mut rng = Xoshiro256StarStar::new(seed);
        // Clear the top bit so scenario ids never collide with fresh ids.
        (0..n).map(|_| rng.next_u64() & !FRESH_ID_BIT).collect()
    }

    fn family() -> PermutationFamily {
        PermutationFamily::standard(42)
    }

    fn handshake_for(
        strategy: StrategyKind,
        working: &[SymbolId],
        peer_len: usize,
        hint: usize,
    ) -> ReceiverHandshake {
        ReceiverHandshake::for_strategy(
            strategy,
            working,
            &SummarySizing::default(),
            &family(),
            shared_registry(),
            &DiffEstimate::new(working.len(), peer_len, hint),
        )
    }

    #[test]
    fn random_sender_draws_from_working_set() {
        let working = ids(100, 1);
        let set: HashSet<_> = working.iter().copied().collect();
        let hs = ReceiverHandshake::default();
        let mut s = Sender::new(
            StrategyKind::Random,
            working,
            &hs,
            &family(),
            shared_registry(),
            7,
            100,
        );
        for _ in 0..500 {
            match s.next_packet() {
                Some(Packet::Encoded(id)) => assert!(set.contains(&id)),
                other => panic!("unexpected packet {other:?}"),
            }
        }
        assert_eq!(s.packets_sent(), 500);
    }

    #[test]
    fn random_bloom_sends_only_unfiltered_and_exhausts() {
        let receiver_set = ids(500, 2);
        let sender_set: Vec<SymbolId> = receiver_set[..250]
            .iter()
            .copied()
            .chain(ids(250, 3))
            .collect();
        let strategy = StrategyKind::RandomSummary(SummaryId::BLOOM);
        let hs = handshake_for(strategy, &receiver_set, sender_set.len(), 250);
        let (_, body) = hs.summary.clone().expect("digest built");
        let filter = BloomDigest::decode(&body).expect("bloom body");
        let mut s = Sender::new(
            strategy,
            sender_set,
            &hs,
            &family(),
            shared_registry(),
            8,
            250,
        );
        let mut sent = HashSet::new();
        while let Some(Packet::Encoded(id)) = s.next_packet() {
            assert!(!filter.filter().contains(id), "sent a filtered symbol");
            assert!(sent.insert(id), "resent {id}");
        }
        // ≈ 250 useful (minus FP withholding) then exhaustion.
        assert!(sent.len() > 200 && sent.len() <= 250, "sent {}", sent.len());
        assert!(s.next_packet().is_none(), "stays exhausted");
    }

    #[test]
    fn every_registered_mechanism_drives_an_informed_sender() {
        let receiver_set = ids(200, 21);
        let fresh = ids(60, 22);
        let sender_set: Vec<SymbolId> = receiver_set[..100]
            .iter()
            .copied()
            .chain(fresh.iter().copied())
            .collect();
        let receiver: HashSet<_> = receiver_set.iter().copied().collect();
        for id in shared_registry().ids() {
            let strategy = StrategyKind::RandomSummary(id);
            let hs = handshake_for(strategy, &receiver_set, sender_set.len(), fresh.len());
            let mut s = Sender::new(
                strategy,
                sender_set.clone(),
                &hs,
                &family(),
                shared_registry(),
                23,
                fresh.len(),
            );
            let mut sent = HashSet::new();
            while let Some(Packet::Encoded(sym)) = s.next_packet() {
                assert!(!receiver.contains(&sym), "{id}: sent a held symbol");
                sent.insert(sym);
            }
            // Every mechanism must clear a usable share of the truly
            // fresh symbols (exact ones all of them).
            assert!(
                sent.len() * 2 >= fresh.len(),
                "{id}: cleared only {} of {}",
                sent.len(),
                fresh.len()
            );
        }
    }

    #[test]
    fn recode_components_come_from_working_set() {
        let working = ids(200, 4);
        let set: HashSet<_> = working.iter().copied().collect();
        let hs = ReceiverHandshake::default();
        let mut s = Sender::new(
            StrategyKind::Recode,
            working,
            &hs,
            &family(),
            shared_registry(),
            9,
            100,
        );
        for _ in 0..100 {
            match s.next_packet() {
                Some(Packet::Recoded(components)) => {
                    assert!(!components.is_empty() && components.len() <= 50);
                    assert!(components.iter().all(|id| set.contains(id)));
                }
                other => panic!("unexpected packet {other:?}"),
            }
        }
    }

    #[test]
    fn recode_bloom_components_all_useful() {
        let receiver_set = ids(400, 5);
        let sender_set: Vec<SymbolId> = receiver_set[..200]
            .iter()
            .copied()
            .chain(ids(200, 6))
            .collect();
        let strategy = StrategyKind::RecodeSummary(SummaryId::BLOOM);
        let hs = handshake_for(strategy, &receiver_set, sender_set.len(), 200);
        let receiver: HashSet<_> = receiver_set.iter().copied().collect();
        let mut s = Sender::new(
            strategy,
            sender_set,
            &hs,
            &family(),
            shared_registry(),
            10,
            200,
        );
        for _ in 0..100 {
            let Some(Packet::Recoded(components)) = s.next_packet() else {
                panic!("expected recoded packet");
            };
            for id in components {
                assert!(!receiver.contains(&id), "recoded over a known symbol");
            }
        }
    }

    #[test]
    fn recode_minwise_scales_degree_with_correlation() {
        let shared = ids(800, 7);
        let sender_set: Vec<SymbolId> = shared.iter().copied().chain(ids(200, 8)).collect();
        // Receiver holds 80 % of the sender's set.
        let receiver_set = shared;
        let hs = handshake_for(StrategyKind::RecodeMinwise, &receiver_set, sender_set.len(), 200);
        let mut correlated = Sender::new(
            StrategyKind::RecodeMinwise,
            sender_set.clone(),
            &hs,
            &family(),
            shared_registry(),
            11,
            200,
        );
        // Uncorrelated receiver for comparison.
        let hs0 = handshake_for(StrategyKind::RecodeMinwise, &ids(800, 99), sender_set.len(), 200);
        let mut uncorrelated = Sender::new(
            StrategyKind::RecodeMinwise,
            sender_set,
            &hs0,
            &family(),
            shared_registry(),
            12,
            200,
        );
        let avg = |s: &mut Sender| {
            let mut total = 0usize;
            for _ in 0..200 {
                if let Some(Packet::Recoded(c)) = s.next_packet() {
                    total += c.len();
                }
            }
            total as f64 / 200.0
        };
        let hi = avg(&mut correlated);
        let lo = avg(&mut uncorrelated);
        assert!(
            hi > lo * 1.5,
            "correlated degree {hi} should exceed uncorrelated {lo}"
        );
    }

    #[test]
    fn full_sender_never_repeats_and_never_collides() {
        let mut fs = FullSender::new(0);
        let mut fs2 = FullSender::new(1);
        let scenario_ids: HashSet<_> = ids(1000, 13).into_iter().collect();
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let Packet::Encoded(id) = fs.next_packet() else {
                unreachable!()
            };
            assert!(seen.insert(id), "full sender repeated {id}");
            assert!(!scenario_ids.contains(&id), "collided with scenario id");
        }
        let Packet::Encoded(id2) = fs2.next_packet() else {
            unreachable!()
        };
        assert!(!seen.contains(&id2), "streams must be disjoint");
    }

    #[test]
    #[should_panic(expected = "needs a digest")]
    fn missing_summary_is_a_protocol_violation() {
        let hs = ReceiverHandshake::default();
        let _ = Sender::new(
            StrategyKind::RandomSummary(SummaryId::BLOOM),
            ids(10, 14),
            &hs,
            &family(),
            shared_registry(),
            15,
            10,
        );
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = StrategyKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Random", "Random/BF", "Recode", "Recode/BF", "Recode/MW"]
        );
        assert_eq!(
            StrategyKind::RandomSummary(SummaryId::CHAR_POLY).label(),
            "Random/CPI"
        );
        assert_eq!(
            StrategyKind::RecodeSummary(SummaryId::WHOLE_SET).label(),
            "Recode/WS"
        );
    }

    #[test]
    fn packet_wire_size_is_the_framed_length() {
        // prefix(4) + tag(1) + id(8) + count(4) + payload.
        assert_eq!(Packet::Encoded(1).wire_size(1400), 1417);
        // prefix(4) + tag(1) + count(4) + 3 ids + count(4) + payload.
        assert_eq!(Packet::Recoded(vec![1, 2, 3]).wire_size(1400), 1437);
        // Cross-check against the actual encoder, not just the formula.
        use bytes::Bytes;
        let mut scratch = Vec::new();
        icd_wire::write_frame_buf(
            &mut std::io::sink(),
            &icd_wire::Message::EncodedSymbol {
                id: 1,
                payload: Bytes::from(vec![0u8; 1400]),
            },
            &mut scratch,
        )
        .expect("sink write");
        assert_eq!(scratch.len(), Packet::Encoded(1).wire_size(1400));
        icd_wire::write_frame_buf(
            &mut std::io::sink(),
            &icd_wire::Message::RecodedSymbol {
                components: vec![1, 2, 3],
                payload: Bytes::from(vec![0u8; 1400]),
            },
            &mut scratch,
        )
        .expect("sink write");
        assert_eq!(scratch.len(), Packet::Recoded(vec![1, 2, 3]).wire_size(1400));
    }
}
