//! The five sender strategies of §6.2.
//!
//! * **Random** — "The transmitting node randomly picks an available
//!   symbol to send. This simple strategy is used by Swarmcast." Uniform
//!   with replacement: the sender is stateless per packet, the honest
//!   reading of an uninformed gossip sender (and what produces the
//!   coupon-collector behaviour the paper highlights).
//! * **Random/BF** — "selects symbols at random and sends those which
//!   are not elements of the Bloom filter provided by the receiver."
//!   Rejection against the filter leaves a candidate list the sender
//!   walks in random order without repetition (resending a symbol the
//!   filter already cleared would be pure waste the sender can avoid for
//!   free); the filter is never updated mid-transfer, as in §6.1.
//! * **Recode** — recoded symbols over the sender's *entire* working set
//!   with the capped degree distribution (degree limit 50, §6.1).
//! * **Recode/BF** — recoded symbols generated only from symbols outside
//!   the receiver's Bloom filter, with the recoding *domain* restricted
//!   to roughly the number of symbols the receiver requested ("we
//!   restrict the recoding domain to an appropriate small size", §6.1) —
//!   recoding over the full candidate set would make the receiver pay
//!   for a fountain over symbols it does not need.
//! * **Recode/MW** — recoded symbols over the entire working set with
//!   degrees scaled by 1/(1−c), c estimated from exchanged min-wise
//!   sketches.

use bytes::Bytes;
use icd_bloom::BloomFilter;
use icd_fountain::{EncodedSymbol, RecodePolicy, Recoder};
use icd_sketch::{MinwiseSketch, PermutationFamily};
use icd_util::rng::{Rng64, Xoshiro256StarStar};

use crate::SymbolId;

/// One packet on the data plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// A plain encoded symbol, identified by id.
    Encoded(SymbolId),
    /// A recoded symbol: XOR of the listed encoded symbols.
    Recoded(Vec<SymbolId>),
}

impl Packet {
    /// Wire size of the packet header + payload for a given block size —
    /// used by byte-accounting ablations (`sim_step` bench).
    #[must_use]
    pub fn wire_size(&self, block_size: usize) -> usize {
        match self {
            Packet::Encoded(_) => 8 + block_size,
            Packet::Recoded(c) => 2 + 8 * c.len() + block_size,
        }
    }
}

/// Which of the §6.2 strategies a sender runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Uninformed uniform selection (Swarmcast baseline).
    Random,
    /// Random selection filtered by the receiver's Bloom filter.
    RandomBloom,
    /// Oblivious recoding over the whole working set.
    Recode,
    /// Recoding restricted to symbols outside the receiver's filter.
    RecodeBloom,
    /// Recoding with min-wise-estimated degree scaling.
    RecodeMinwise,
}

impl StrategyKind {
    /// All five strategies in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::Random,
        StrategyKind::RandomBloom,
        StrategyKind::Recode,
        StrategyKind::RecodeBloom,
        StrategyKind::RecodeMinwise,
    ];

    /// The label used in the paper's figure legends.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::Random => "Random",
            StrategyKind::RandomBloom => "Random/BF",
            StrategyKind::Recode => "Recode",
            StrategyKind::RecodeBloom => "Recode/BF",
            StrategyKind::RecodeMinwise => "Recode/MW",
        }
    }

    /// Whether the strategy needs the receiver's Bloom filter.
    #[must_use]
    pub fn needs_filter(&self) -> bool {
        matches!(self, StrategyKind::RandomBloom | StrategyKind::RecodeBloom)
    }

    /// Whether the strategy needs min-wise sketches.
    #[must_use]
    pub fn needs_sketch(&self) -> bool {
        matches!(self, StrategyKind::RecodeMinwise)
    }
}

/// What the receiver hands a sender at connection setup (the one-shot
/// control exchange of §6.1; never updated during the transfer).
#[derive(Debug, Clone, Default)]
pub struct ReceiverHandshake {
    /// Bloom filter over the receiver's working set (BF strategies).
    pub filter: Option<BloomFilter>,
    /// Min-wise sketch of the receiver's working set (MW strategy).
    pub sketch: Option<MinwiseSketch>,
}

impl ReceiverHandshake {
    /// Builds the handshake a receiver with `working_set` would send,
    /// providing whatever `strategy` requires. `bits_per_element` sizes
    /// the filter (the paper's §5.2 reference point is 8).
    #[must_use]
    pub fn for_strategy(
        strategy: StrategyKind,
        working_set: &[SymbolId],
        bits_per_element: f64,
        family: &PermutationFamily,
    ) -> Self {
        let filter = strategy.needs_filter().then(|| {
            let mut f = BloomFilter::with_bits_per_element(
                working_set.len().max(1),
                bits_per_element,
                0xF117E5,
            );
            for &id in working_set {
                f.insert(id);
            }
            f
        });
        let sketch = strategy
            .needs_sketch()
            .then(|| MinwiseSketch::from_keys(family, working_set.iter().copied()));
        Self { filter, sketch }
    }
}

/// A sender bound to one receiver for the duration of a connection.
#[derive(Debug)]
pub struct Sender {
    kind: StrategyKind,
    working: Vec<SymbolId>,
    /// Random-order candidate queue (BF strategies); `next_candidate`
    /// indexes into it.
    candidates: Vec<SymbolId>,
    next_candidate: usize,
    recoder: Option<Recoder>,
    rng: Xoshiro256StarStar,
    packets_sent: u64,
}

impl Sender {
    /// Creates a sender running `kind` over `working` symbols, given the
    /// receiver's handshake. `family` is the protocol-wide permutation
    /// family (for the sender's own sketch under Recode/MW).
    /// `request_hint` is the number of symbols the receiver asked this
    /// sender for (§6.1); Recode/BF uses it to size its recoding domain.
    ///
    /// Panics if the working set is empty or if the handshake lacks what
    /// the strategy requires — both are protocol violations, not runtime
    /// conditions.
    #[must_use]
    pub fn new(
        kind: StrategyKind,
        working: Vec<SymbolId>,
        handshake: &ReceiverHandshake,
        family: &PermutationFamily,
        seed: u64,
        request_hint: usize,
    ) -> Self {
        assert!(!working.is_empty(), "sender needs a non-empty working set");
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut candidates = Vec::new();
        let mut next_candidate = 0;
        let mut recoder = None;
        match kind {
            StrategyKind::Random => {}
            StrategyKind::RandomBloom => {
                let filter = handshake.filter.as_ref().expect("Random/BF needs a filter");
                candidates = working.iter().copied().filter(|&id| !filter.contains(id)).collect();
                rng.shuffle(&mut candidates);
                next_candidate = 0;
            }
            StrategyKind::Recode => {
                recoder = Some(Recoder::new(
                    to_symbols(&working),
                    icd_fountain::recode::PAPER_DEGREE_LIMIT,
                    RecodePolicy::Oblivious,
                ));
            }
            StrategyKind::RecodeBloom => {
                let filter = handshake.filter.as_ref().expect("Recode/BF needs a filter");
                candidates = working.iter().copied().filter(|&id| !filter.contains(id)).collect();
                if !candidates.is_empty() {
                    // Restrict the recoding domain to what the receiver
                    // asked for (plus recode-layer decoding headroom);
                    // recoding over every candidate would force the
                    // receiver to collect the whole candidate fountain.
                    let domain_size = (request_hint + request_hint / 10 + 8)
                        .min(candidates.len())
                        .max(1);
                    rng.shuffle(&mut candidates);
                    let domain = candidates[..domain_size].to_vec();
                    recoder = Some(Recoder::new(
                        to_symbols(&domain),
                        icd_fountain::recode::PAPER_DEGREE_LIMIT,
                        RecodePolicy::Oblivious,
                    ));
                }
            }
            StrategyKind::RecodeMinwise => {
                let receiver_sketch = handshake.sketch.as_ref().expect("Recode/MW needs a sketch");
                let own = MinwiseSketch::from_keys(family, working.iter().copied());
                // c = |A∩B| / |B| with B = this sender: containment of
                // the sender's set in the receiver's (estimate() treats
                // self as A = receiver side; call from receiver sketch).
                let c = receiver_sketch.estimate(&own).containment_of_b();
                recoder = Some(Recoder::new(
                    to_symbols(&working),
                    icd_fountain::recode::PAPER_DEGREE_LIMIT,
                    RecodePolicy::MinwiseScaled { containment: c },
                ));
            }
        }
        Self {
            kind,
            working,
            candidates,
            next_candidate,
            recoder,
            rng,
            packets_sent: 0,
        }
    }

    /// The strategy this sender runs.
    #[must_use]
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// Packets emitted so far.
    #[must_use]
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Size of the sender's working set.
    #[must_use]
    pub fn working_set_size(&self) -> usize {
        self.working.len()
    }

    /// Number of symbols the receiver's filter cleared for sending
    /// (BF strategies only; 0 otherwise).
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Emits the next packet, or `None` if this sender can provably
    /// contribute nothing more (a BF sender that exhausted its candidate
    /// list — everything else it holds, the receiver told it it has).
    pub fn next_packet(&mut self) -> Option<Packet> {
        let packet = match self.kind {
            StrategyKind::Random => {
                let id = self.working[self.rng.index(self.working.len())];
                Some(Packet::Encoded(id))
            }
            StrategyKind::RandomBloom => {
                if self.next_candidate >= self.candidates.len() {
                    None
                } else {
                    let id = self.candidates[self.next_candidate];
                    self.next_candidate += 1;
                    Some(Packet::Encoded(id))
                }
            }
            StrategyKind::Recode | StrategyKind::RecodeMinwise => {
                let recoder = self.recoder.as_ref().expect("recoding sender has a recoder");
                let rec = recoder.generate(&mut self.rng);
                Some(Packet::Recoded(rec.components))
            }
            StrategyKind::RecodeBloom => self.recoder.as_ref().map(|recoder| {
                let rec = recoder.generate(&mut self.rng);
                Packet::Recoded(rec.components)
            }),
        };
        if packet.is_some() {
            self.packets_sent += 1;
        }
        packet
    }
}

/// A *full* sender: holds the whole file and streams fresh encoded
/// symbols from an unbounded universe (the digital fountain). Fresh ids
/// are drawn from a private counter namespace that cannot collide with
/// scenario symbols (which are hashes with the top bit clear).
#[derive(Debug)]
pub struct FullSender {
    next: u64,
    packets_sent: u64,
}

/// Tag bit marking full-sender (fresh fountain) symbol ids.
pub const FRESH_ID_BIT: u64 = 1 << 63;

impl FullSender {
    /// Creates a full sender with its own id namespace (`stream` keeps
    /// multiple full senders disjoint).
    #[must_use]
    pub fn new(stream: u32) -> Self {
        Self {
            next: FRESH_ID_BIT | (u64::from(stream) << 48),
            packets_sent: 0,
        }
    }

    /// Emits the next fresh symbol (always new to every receiver).
    pub fn next_packet(&mut self) -> Packet {
        let id = self.next;
        self.next += 1;
        self.packets_sent += 1;
        Packet::Encoded(id)
    }

    /// Packets emitted so far.
    #[must_use]
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }
}

fn to_symbols(ids: &[SymbolId]) -> Vec<EncodedSymbol> {
    ids.iter()
        .map(|&id| EncodedSymbol {
            id,
            payload: Bytes::new(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ids(n: usize, seed: u64) -> Vec<SymbolId> {
        let mut rng = Xoshiro256StarStar::new(seed);
        // Clear the top bit so scenario ids never collide with fresh ids.
        (0..n).map(|_| rng.next_u64() & !FRESH_ID_BIT).collect()
    }

    fn family() -> PermutationFamily {
        PermutationFamily::standard(42)
    }

    #[test]
    fn random_sender_draws_from_working_set() {
        let working = ids(100, 1);
        let set: HashSet<_> = working.iter().copied().collect();
        let hs = ReceiverHandshake::default();
        let mut s = Sender::new(StrategyKind::Random, working, &hs, &family(), 7, 100);
        for _ in 0..500 {
            match s.next_packet() {
                Some(Packet::Encoded(id)) => assert!(set.contains(&id)),
                other => panic!("unexpected packet {other:?}"),
            }
        }
        assert_eq!(s.packets_sent(), 500);
    }

    #[test]
    fn random_bloom_sends_only_unfiltered_and_exhausts() {
        let receiver_set = ids(500, 2);
        let sender_set: Vec<SymbolId> = receiver_set[..250]
            .iter()
            .copied()
            .chain(ids(250, 3))
            .collect();
        let hs = ReceiverHandshake::for_strategy(
            StrategyKind::RandomBloom,
            &receiver_set,
            8.0,
            &family(),
        );
        let filter = hs.filter.clone().expect("filter built");
        let mut s = Sender::new(StrategyKind::RandomBloom, sender_set, &hs, &family(), 8, 250);
        let mut sent = HashSet::new();
        while let Some(Packet::Encoded(id)) = s.next_packet() {
            assert!(!filter.contains(id), "sent a filtered symbol");
            assert!(sent.insert(id), "resent {id}");
        }
        // ≈ 250 useful (minus FP withholding) then exhaustion.
        assert!(sent.len() > 200 && sent.len() <= 250, "sent {}", sent.len());
        assert!(s.next_packet().is_none(), "stays exhausted");
    }

    #[test]
    fn recode_components_come_from_working_set() {
        let working = ids(200, 4);
        let set: HashSet<_> = working.iter().copied().collect();
        let hs = ReceiverHandshake::default();
        let mut s = Sender::new(StrategyKind::Recode, working, &hs, &family(), 9, 100);
        for _ in 0..100 {
            match s.next_packet() {
                Some(Packet::Recoded(components)) => {
                    assert!(!components.is_empty() && components.len() <= 50);
                    assert!(components.iter().all(|id| set.contains(id)));
                }
                other => panic!("unexpected packet {other:?}"),
            }
        }
    }

    #[test]
    fn recode_bloom_components_all_useful() {
        let receiver_set = ids(400, 5);
        let sender_set: Vec<SymbolId> = receiver_set[..200]
            .iter()
            .copied()
            .chain(ids(200, 6))
            .collect();
        let hs = ReceiverHandshake::for_strategy(
            StrategyKind::RecodeBloom,
            &receiver_set,
            8.0,
            &family(),
        );
        let receiver: HashSet<_> = receiver_set.iter().copied().collect();
        let mut s = Sender::new(StrategyKind::RecodeBloom, sender_set, &hs, &family(), 10, 200);
        for _ in 0..100 {
            let Some(Packet::Recoded(components)) = s.next_packet() else {
                panic!("expected recoded packet");
            };
            for id in components {
                assert!(!receiver.contains(&id), "recoded over a known symbol");
            }
        }
    }

    #[test]
    fn recode_minwise_scales_degree_with_correlation() {
        let shared = ids(800, 7);
        let sender_set: Vec<SymbolId> = shared.iter().copied().chain(ids(200, 8)).collect();
        // Receiver holds 80 % of the sender's set.
        let receiver_set = shared;
        let fam = family();
        let hs =
            ReceiverHandshake::for_strategy(StrategyKind::RecodeMinwise, &receiver_set, 8.0, &fam);
        let mut correlated =
            Sender::new(StrategyKind::RecodeMinwise, sender_set.clone(), &hs, &fam, 11, 200);
        // Uncorrelated receiver for comparison.
        let hs0 = ReceiverHandshake::for_strategy(
            StrategyKind::RecodeMinwise,
            &ids(800, 99),
            8.0,
            &fam,
        );
        let mut uncorrelated = Sender::new(StrategyKind::RecodeMinwise, sender_set, &hs0, &fam, 12, 200);
        let avg = |s: &mut Sender| {
            let mut total = 0usize;
            for _ in 0..200 {
                if let Some(Packet::Recoded(c)) = s.next_packet() {
                    total += c.len();
                }
            }
            total as f64 / 200.0
        };
        let hi = avg(&mut correlated);
        let lo = avg(&mut uncorrelated);
        assert!(
            hi > lo * 1.5,
            "correlated degree {hi} should exceed uncorrelated {lo}"
        );
    }

    #[test]
    fn full_sender_never_repeats_and_never_collides() {
        let mut fs = FullSender::new(0);
        let mut fs2 = FullSender::new(1);
        let scenario_ids: HashSet<_> = ids(1000, 13).into_iter().collect();
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            let Packet::Encoded(id) = fs.next_packet() else {
                unreachable!()
            };
            assert!(seen.insert(id), "full sender repeated {id}");
            assert!(!scenario_ids.contains(&id), "collided with scenario id");
        }
        let Packet::Encoded(id2) = fs2.next_packet() else {
            unreachable!()
        };
        assert!(!seen.contains(&id2), "streams must be disjoint");
    }

    #[test]
    #[should_panic(expected = "needs a filter")]
    fn missing_filter_is_a_protocol_violation() {
        let hs = ReceiverHandshake::default();
        let _ = Sender::new(StrategyKind::RandomBloom, ids(10, 14), &hs, &family(), 15, 10);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = StrategyKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["Random", "Random/BF", "Recode", "Recode/BF", "Recode/MW"]
        );
    }

    #[test]
    fn packet_wire_size() {
        assert_eq!(Packet::Encoded(1).wire_size(1400), 1408);
        assert_eq!(Packet::Recoded(vec![1, 2, 3]).wire_size(1400), 1426);
    }
}
