//! A compact, fixed-length bit vector.
//!
//! Backing store for the Bloom-filter family. Bits are indexed `0..len`
//! and packed into `u64` words. The structure deliberately stays minimal:
//! set/get/clear, popcount, union/intersection (used when peers merge
//! summaries), and serialization to/from bytes (used by the wire format,
//! whose packet-budget audits need exact byte counts).

/// Fixed-length bit vector packed into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates a bit vector of `len` zero bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1. Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i` to 0. Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`. Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets every bit to 0.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// In-place union with another vector of the same length.
    ///
    /// Panics if lengths differ: merging summaries of different geometries
    /// is a logic error, not a recoverable condition.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection with another vector of the same length.
    pub fn intersect_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "bit vector length mismatch");
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// Serializes to little-endian bytes, `ceil(len/8)` of them.
    ///
    /// Trailing bits beyond `len` are guaranteed zero, so equal vectors
    /// serialize identically.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n_bytes = self.len.div_ceil(8);
        let mut out = Vec::with_capacity(n_bytes);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.truncate(n_bytes);
        out
    }

    /// Reconstructs a bit vector of `len` bits from bytes produced by
    /// [`BitVec::to_bytes`]. Returns `None` if `bytes` is too short.
    #[must_use]
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Self> {
        if bytes.len() < len.div_ceil(8) {
            return None;
        }
        let mut v = Self::new(len);
        for (i, chunk) in bytes[..len.div_ceil(8)].chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            v.words[i] = u64::from_le_bytes(word);
        }
        // Mask tail bits so equality semantics hold.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = v.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        Some(v)
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert!(!v.get(0));
        v.set(0);
        v.set(64);
        v.set(129);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let v = BitVec::new(10);
        let _ = v.get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let mut v = BitVec::new(0);
        v.set(0);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(3);
        a.set(50);
        b.set(50);
        b.set(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert!(u.get(3) && u.get(50) && u.get(99));
        assert_eq!(u.count_ones(), 3);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert!(i.get(50));
        assert_eq!(i.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn union_length_mismatch_panics() {
        let mut a = BitVec::new(10);
        let b = BitVec::new(11);
        a.union_with(&b);
    }

    #[test]
    fn byte_roundtrip_various_lengths() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 100, 1000] {
            let mut v = BitVec::new(len);
            for i in (0..len).step_by(3) {
                v.set(i);
            }
            let bytes = v.to_bytes();
            assert_eq!(bytes.len(), len.div_ceil(8));
            let back = BitVec::from_bytes(&bytes, len).expect("roundtrip");
            assert_eq!(back, v);
        }
    }

    #[test]
    fn from_bytes_rejects_short_input() {
        assert!(BitVec::from_bytes(&[0u8; 1], 16).is_none());
        assert!(BitVec::from_bytes(&[0u8; 2], 16).is_some());
    }

    #[test]
    fn from_bytes_masks_tail_bits() {
        // A stray bit beyond `len` in the input must not affect equality.
        let bytes = [0xFFu8];
        let v = BitVec::from_bytes(&bytes, 3).expect("3 bits from one byte");
        assert_eq!(v.count_ones(), 3);
        let mut w = BitVec::new(3);
        w.set(0);
        w.set(1);
        w.set(2);
        assert_eq!(v, w);
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut v = BitVec::new(200);
        let idx = [0usize, 5, 63, 64, 65, 127, 128, 199];
        for &i in &idx {
            v.set(i);
        }
        let collected: Vec<usize> = v.iter_ones().collect();
        assert_eq!(collected, idx);
    }

    #[test]
    fn empty_vector_behaves() {
        let v = BitVec::new(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.to_bytes().len(), 0);
        assert_eq!(v.iter_ones().count(), 0);
    }
}
