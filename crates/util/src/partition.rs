//! Deterministic weight-balanced partitioning.
//!
//! The sharded discrete-event engine splits a node table into contiguous
//! index ranges, one per worker shard. Ranges (rather than arbitrary
//! subsets) keep the partition representable as cut points, let the
//! executor hand each worker a disjoint `&mut` slice of the node table
//! with no index remapping, and make the assignment a pure function of
//! the weight vector — the same inputs always produce the same cuts, so
//! a partitioned run is exactly reproducible.
//!
//! Balance quality: each range's weight is within one item of the ideal
//! `total / parts` prefix boundary (greedy prefix cuts). For the degree
//! weights the overlay engine feeds in, that is the classic
//! profile-guided chunking bound — good enough that barrier time is set
//! by event variance, not by the partition.

use std::ops::Range;

/// Splits `0..weights.len()` into `parts` contiguous ranges whose weight
/// sums track the ideal prefix boundaries `k·total/parts`.
///
/// Guarantees, all deterministic in the inputs:
/// * exactly `parts` ranges, in order, covering `0..weights.len()`;
/// * every range is non-empty while items remain (a range is empty only
///   when there are fewer items than parts left to fill);
/// * each cut is placed at the first index at or past its ideal
///   boundary, so no range overshoots the ideal by more than the weight
///   of its last item.
///
/// Zero weights are fine (items that cost nothing to simulate); an
/// all-zero vector degrades to an even item-count split.
///
/// # Panics
/// Panics if `parts == 0`.
#[must_use]
pub fn balanced_ranges(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    assert!(parts >= 1, "need at least one part");
    let n = weights.len();
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    let mut out = Vec::with_capacity(parts);
    let mut cum: u128 = 0;
    let mut idx = 0usize;
    for k in 0..parts {
        let start = idx;
        // Leave at least one item for each part still to be filled.
        let cap = n.saturating_sub(parts - 1 - k);
        let target = if total == 0 {
            // Even item-count split when weights carry no signal.
            (n as u128 * (k as u128 + 1)).div_ceil(parts as u128)
        } else {
            total * (k as u128 + 1) / parts as u128
        };
        while idx < cap {
            let reached = if total == 0 {
                idx as u128 >= target
            } else {
                cum >= target
            };
            if idx > start && reached {
                break;
            }
            cum += u128::from(weights[idx]);
            idx += 1;
        }
        out.push(start..idx);
    }
    // The last range absorbs any tail the cap logic reserved in vain.
    if idx < n {
        let last = out.last_mut().expect("parts >= 1");
        last.end = n;
    }
    out
}

/// The shard index owning `item` under `ranges` (as returned by
/// [`balanced_ranges`]): binary search over the cut points.
///
/// # Panics
/// Panics if `item` is outside every range.
#[must_use]
pub fn owner_of(ranges: &[Range<usize>], item: usize) -> usize {
    let shard = ranges.partition_point(|r| r.end <= item);
    assert!(
        shard < ranges.len() && ranges[shard].contains(&item),
        "item {item} outside the partition"
    );
    shard
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
        let ranges = balanced_ranges(weights, parts);
        assert_eq!(ranges.len(), parts);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next, "ranges must tile contiguously");
            next = r.end;
        }
        assert_eq!(next, weights.len(), "ranges must cover every item");
        ranges
    }

    #[test]
    fn covers_and_balances_uniform_weights() {
        let weights = vec![1u64; 100];
        let ranges = check_cover(&weights, 8);
        for r in &ranges {
            let w = r.len();
            assert!((12..=13).contains(&w), "range {r:?} weight {w}");
        }
    }

    #[test]
    fn skewed_weights_balance_by_weight_not_count() {
        // One heavy item dominates: it should get (almost) a part to
        // itself while light items pack together.
        let mut weights = vec![1u64; 64];
        weights[0] = 1000;
        let ranges = check_cover(&weights, 4);
        assert_eq!(ranges[0], 0..1, "heavy head isolated");
        let light: usize = ranges[1..].iter().map(std::ops::Range::len).sum();
        assert_eq!(light, 63);
    }

    #[test]
    fn more_parts_than_items_leaves_empty_tails() {
        let ranges = check_cover(&[5, 5], 4);
        let nonempty = ranges.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(nonempty, 2);
    }

    #[test]
    fn zero_weights_split_evenly() {
        let ranges = check_cover(&[0u64; 10], 3);
        let sizes: Vec<usize> = ranges.iter().map(std::ops::Range::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn empty_input() {
        let ranges = check_cover(&[], 3);
        assert!(ranges.iter().all(std::ops::Range::is_empty));
    }

    #[test]
    fn single_part_takes_everything() {
        let ranges = check_cover(&[3, 1, 4, 1, 5], 1);
        assert_eq!(ranges[0], 0..5);
    }

    #[test]
    fn deterministic() {
        let weights: Vec<u64> = (0..257).map(|i| (i * 37) % 101).collect();
        assert_eq!(balanced_ranges(&weights, 7), balanced_ranges(&weights, 7));
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let weights: Vec<u64> = (0..50).map(|i| i % 5 + 1).collect();
        let ranges = check_cover(&weights, 6);
        for item in 0..50 {
            let s = owner_of(&ranges, item);
            assert!(ranges[s].contains(&item));
        }
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        let _ = balanced_ranges(&[1], 0);
    }
}
