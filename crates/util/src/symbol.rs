//! Word-aligned symbol buffers and the pool that recycles them.
//!
//! The data plane XORs kilobyte-scale payloads on every encode, decode,
//! and recode step (§5.4's substitution rule is nothing but XOR), so the
//! representation of a payload in flight decides the whole pipeline's
//! throughput. [`SymbolBuf`] stores payload bytes packed little-endian
//! into a `Box<[u64]>`: every XOR between two buffers is a straight-line
//! `u64` loop the compiler vectorizes, with no per-byte tail handling
//! because the final partial word is kept zero-padded as an invariant.
//!
//! [`SymbolPool`] is a free-list of retired buffers. Decoders and recode
//! buffers acquire from and release to a pool instead of allocating, so
//! a steady-state transfer performs **zero per-symbol heap allocations**
//! once the pool has warmed up — [`PoolStats`] makes that property
//! assertable in tests rather than aspirational.
//!
//! Everything here is safe code: byte views are materialized through
//! `u64::from_le_bytes`/`to_le_bytes` on exact chunks, which optimizes to
//! wide loads and stores without any pointer casting.

/// Number of payload bytes packed into each storage word.
const WORD_BYTES: usize = 8;

/// A fixed-length byte buffer stored as little-endian-packed `u64` words.
///
/// Invariants:
/// * `words.len() >= len.div_ceil(8)` (capacity may exceed the live
///   view when a pooled buffer is reused at a shorter length);
/// * the bytes of the live word range beyond `len` are always zero, so
///   whole-word operations ([`SymbolBuf::xor_buf`], [`SymbolBuf::eq`])
///   need no tail masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolBuf {
    words: Box<[u64]>,
    len: usize,
}

impl Default for SymbolBuf {
    /// An empty (zero-length) buffer.
    fn default() -> Self {
        Self::zeroed(0)
    }
}

impl SymbolBuf {
    /// A zero-filled buffer of `len` bytes.
    #[must_use]
    pub fn zeroed(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(WORD_BYTES)].into_boxed_slice(),
            len,
        }
    }

    /// A buffer holding a copy of `bytes`.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut buf = Self::zeroed(bytes.len());
        buf.copy_from_bytes(bytes);
        buf
    }

    /// Length of the byte view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the byte view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live storage words (`len` rounded up to whole words).
    #[inline]
    fn word_len(&self) -> usize {
        self.len.div_ceil(WORD_BYTES)
    }

    /// The live words (read-only; tail padding beyond `len` is zero).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words[..self.word_len()]
    }

    /// Zeroes the live words.
    pub fn clear(&mut self) {
        let n = self.word_len();
        self.words[..n].fill(0);
    }

    /// Overwrites the buffer with `bytes`. Panics on length mismatch —
    /// symbols of one code share a block size, so a mismatch is a
    /// protocol error, exactly as in [`crate::symbol`]'s XOR operations.
    pub fn copy_from_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.len, "copy of unequal-length buffers");
        let mut chunks = bytes.chunks_exact(WORD_BYTES);
        // Zip over the word slice directly — no per-word bounds checks,
        // so the loop compiles to straight wide loads and stores.
        for (word, chunk) in self.words.iter_mut().zip(&mut chunks) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut last = [0u8; WORD_BYTES];
            last[..tail.len()].copy_from_slice(tail);
            self.words[self.len / WORD_BYTES] = u64::from_le_bytes(last);
        }
    }

    /// XORs another buffer in: the fast path, one `u64` op per word.
    /// Panics on length mismatch.
    #[inline]
    pub fn xor_buf(&mut self, other: &Self) {
        assert_eq!(other.len, self.len, "XOR of unequal-length buffers");
        let n = self.word_len();
        for (d, s) in self.words[..n].iter_mut().zip(&other.words[..n]) {
            *d ^= s;
        }
    }

    /// XORs a raw word slice in — for callers that keep payloads packed
    /// in word arenas (the recoder). `words` must cover exactly this
    /// buffer's live words, with the same zero-padded-tail convention.
    #[inline]
    pub fn xor_word_slice(&mut self, words: &[u64]) {
        let n = self.word_len();
        assert_eq!(words.len(), n, "XOR of unequal-length word slices");
        for (d, s) in self.words[..n].iter_mut().zip(words) {
            *d ^= s;
        }
    }

    /// XORs four word slices in at once. One pass with four independent
    /// load streams keeps several cache misses in flight, which is what
    /// actually bounds high-degree recoding over a working set bigger
    /// than L2 — single-stream XOR serializes on L3 latency instead.
    #[inline]
    pub fn xor_word_slices4(&mut self, s0: &[u64], s1: &[u64], s2: &[u64], s3: &[u64]) {
        let n = self.word_len();
        assert!(
            s0.len() == n && s1.len() == n && s2.len() == n && s3.len() == n,
            "XOR of unequal-length word slices"
        );
        for (i, d) in self.words[..n].iter_mut().enumerate() {
            *d ^= s0[i] ^ s1[i] ^ s2[i] ^ s3[i];
        }
    }

    /// XORs eight word slices in at once (see [`SymbolBuf::xor_word_slices4`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn xor_word_slices8(
        &mut self,
        s0: &[u64], s1: &[u64], s2: &[u64], s3: &[u64],
        s4: &[u64], s5: &[u64], s6: &[u64], s7: &[u64],
    ) {
        let n = self.word_len();
        assert!(
            s0.len() == n && s1.len() == n && s2.len() == n && s3.len() == n
                && s4.len() == n && s5.len() == n && s6.len() == n && s7.len() == n,
            "XOR of unequal-length word slices"
        );
        for (i, d) in self.words[..n].iter_mut().enumerate() {
            *d ^= s0[i] ^ s1[i] ^ s2[i] ^ s3[i] ^ s4[i] ^ s5[i] ^ s6[i] ^ s7[i];
        }
    }

    /// XORs a byte slice in, widening it to words on the fly. Panics on
    /// length mismatch.
    pub fn xor_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.len, "XOR of unequal-length buffers");
        let mut chunks = bytes.chunks_exact(WORD_BYTES);
        for (word, chunk) in self.words.iter_mut().zip(&mut chunks) {
            *word ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut last = [0u8; WORD_BYTES];
            last[..tail.len()].copy_from_slice(tail);
            self.words[self.len / WORD_BYTES] ^= u64::from_le_bytes(last);
        }
    }

    /// Writes the byte view into `out`. Panics on length mismatch.
    pub fn write_to(&self, out: &mut [u8]) {
        assert_eq!(out.len(), self.len, "copy into unequal-length buffer");
        let mut chunks = out.chunks_exact_mut(WORD_BYTES);
        for (chunk, word) in (&mut chunks).zip(self.words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let last = self.words[self.len / WORD_BYTES].to_le_bytes();
            tail.copy_from_slice(&last[..tail.len()]);
        }
    }

    /// The byte view as a fresh `Vec<u8>` (allocates; boundary use only).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        self.write_to(&mut out);
        out
    }

    /// Re-views the buffer at a (possibly different) byte length WITHOUT
    /// zeroing: contents of the live range are unspecified (stale bytes
    /// from the previous user), and the zero-padded-tail invariant is
    /// suspended until the caller overwrites the buffer.
    fn reset_unspecified(&mut self, len: usize) {
        assert!(
            len.div_ceil(WORD_BYTES) <= self.words.len(),
            "pooled buffer too small for requested length"
        );
        self.len = len;
    }
}

/// Counters proving (or disproving) steady-state allocation freedom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers newly heap-allocated by [`SymbolPool::acquire`].
    pub allocated: u64,
    /// Acquisitions served from the free list (no allocation).
    pub reused: u64,
    /// Buffers returned via [`SymbolPool::release`].
    pub released: u64,
}

/// A free-list of [`SymbolBuf`]s.
///
/// Not thread-safe by design: each decoder / recode buffer owns its pool
/// (or borrows one across sequential transfers), matching the engine's
/// share-nothing parallelism — cells never share mutable state.
#[derive(Debug, Clone, Default)]
pub struct SymbolPool {
    free: Vec<SymbolBuf>,
    stats: PoolStats,
}

impl SymbolPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool pre-warmed with `count` buffers of `len` bytes, so even the
    /// first transfer through it allocates nothing.
    #[must_use]
    pub fn with_capacity(count: usize, len: usize) -> Self {
        let mut pool = Self::new();
        for _ in 0..count {
            pool.free.push(SymbolBuf::zeroed(len));
        }
        pool
    }

    /// Hands out a zeroed buffer of `len` bytes, reusing a retired one
    /// when its capacity suffices.
    pub fn acquire(&mut self, len: usize) -> SymbolBuf {
        let mut buf = self.acquire_raw(len);
        buf.clear();
        buf
    }

    /// Hands out a buffer of `len` bytes with **unspecified contents** —
    /// possibly stale bytes from its previous user, with the
    /// zero-padded-tail invariant suspended. For callers that overwrite
    /// the whole buffer immediately ([`SymbolBuf::copy_from_bytes`]
    /// re-establishes the invariant), which skips a redundant
    /// block-sized memset on the per-symbol hot path. The pool is
    /// per-session state, so "stale" never crosses a trust boundary.
    pub fn acquire_for_overwrite(&mut self, len: usize) -> SymbolBuf {
        self.acquire_raw(len)
    }

    fn acquire_raw(&mut self, len: usize) -> SymbolBuf {
        let need = len.div_ceil(WORD_BYTES);
        // Scan a bounded suffix for a fitting buffer; with the homogeneous
        // block sizes of one code every entry fits, making this O(1).
        let scan = self.free.len().saturating_sub(8);
        if let Some(pos) = self.free[scan..]
            .iter()
            .rposition(|b| b.words.len() >= need)
        {
            let mut buf = self.free.swap_remove(scan + pos);
            buf.reset_unspecified(len);
            self.stats.reused += 1;
            return buf;
        }
        self.stats.allocated += 1;
        SymbolBuf::zeroed(len)
    }

    /// Returns a buffer to the free list.
    pub fn release(&mut self, buf: SymbolBuf) {
        self.stats.released += 1;
        self.free.push(buf);
    }

    /// Buffers currently parked in the free list.
    #[must_use]
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Allocation/reuse counters since construction.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_tail_lengths() {
        for len in 0..=40usize {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 1) as u8).collect();
            let buf = SymbolBuf::from_bytes(&bytes);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.to_vec(), bytes, "roundtrip at len {len}");
        }
    }

    #[test]
    fn xor_buf_matches_bytewise() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 100, 1400] {
            let a: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 7 % 253) as u8).collect();
            let mut buf = SymbolBuf::from_bytes(&a);
            buf.xor_buf(&SymbolBuf::from_bytes(&b));
            let expect: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
            assert_eq!(buf.to_vec(), expect, "len {len}");
            // xor_bytes agrees with xor_buf.
            let mut buf2 = SymbolBuf::from_bytes(&a);
            buf2.xor_bytes(&b);
            assert_eq!(buf2, buf, "len {len}");
        }
    }

    #[test]
    fn tail_padding_stays_zero() {
        let mut buf = SymbolBuf::from_bytes(&[0xFF; 13]);
        buf.xor_bytes(&[0xAA; 13]);
        let last = *buf.words().last().expect("non-empty");
        assert_eq!(last >> 40, 0, "bytes beyond len must stay zero");
    }

    #[test]
    fn write_to_partial_word() {
        let buf = SymbolBuf::from_bytes(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let mut out = [0u8; 10];
        buf.write_to(&mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    }

    #[test]
    fn pool_reuses_and_counts() {
        let mut pool = SymbolPool::new();
        let a = pool.acquire(1400);
        let b = pool.acquire(1400);
        assert_eq!(pool.stats().allocated, 2);
        pool.release(a);
        pool.release(b);
        for _ in 0..100 {
            let buf = pool.acquire(1400);
            pool.release(buf);
        }
        let stats = pool.stats();
        assert_eq!(stats.allocated, 2, "steady state must not allocate");
        assert_eq!(stats.reused, 100);
        assert_eq!(stats.released, 102);
    }

    #[test]
    fn pool_reissues_buffers_zeroed() {
        // The poisoning hazard: a dirty released buffer must come back
        // clean, including when reused at a shorter length.
        let mut pool = SymbolPool::new();
        let mut buf = pool.acquire(64);
        buf.copy_from_bytes(&[0xEE; 64]);
        pool.release(buf);
        let again = pool.acquire(64);
        assert_eq!(again.to_vec(), vec![0u8; 64], "reused buffer not zeroed");
        pool.release(again);
        let shorter = pool.acquire(13);
        assert_eq!(shorter.len(), 13);
        assert_eq!(shorter.to_vec(), vec![0u8; 13]);
        assert!(shorter.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn acquire_for_overwrite_is_clean_after_copy() {
        // The overwrite discipline: the raw buffer may carry stale bytes,
        // but one copy_from_bytes re-establishes both the contents and
        // the zero-padded-tail invariant — including when reused shorter.
        let mut pool = SymbolPool::new();
        let mut buf = pool.acquire(64);
        buf.copy_from_bytes(&[0xEE; 64]);
        pool.release(buf);
        let mut again = pool.acquire_for_overwrite(13);
        again.copy_from_bytes(&[0x11; 13]);
        assert_eq!(again.to_vec(), vec![0x11; 13]);
        let last = *again.words().last().expect("non-empty");
        assert_eq!(last >> 40, 0, "tail bytes beyond len must be zero");
        // And the zeroing acquire stays available for accumulator use.
        pool.release(again);
        let fresh = pool.acquire(13);
        assert_eq!(fresh.to_vec(), vec![0u8; 13]);
    }

    #[test]
    fn pool_grows_for_larger_requests() {
        let mut pool = SymbolPool::new();
        let small = pool.acquire(8);
        pool.release(small);
        // A bigger request cannot reuse the 1-word buffer.
        let big = pool.acquire(1024);
        assert_eq!(big.len(), 1024);
        assert_eq!(pool.stats().allocated, 2);
    }

    #[test]
    fn prewarmed_pool_never_allocates() {
        let mut pool = SymbolPool::with_capacity(4, 256);
        let bufs: Vec<SymbolBuf> = (0..4).map(|_| pool.acquire(256)).collect();
        for b in bufs {
            pool.release(b);
        }
        assert_eq!(pool.stats().allocated, 0);
        assert_eq!(pool.stats().reused, 4);
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn xor_length_mismatch_panics() {
        let mut a = SymbolBuf::zeroed(8);
        a.xor_bytes(&[0u8; 9]);
    }
}
