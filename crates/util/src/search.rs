//! Interpolation search over sorted `u64` keys.
//!
//! §4 of the paper notes that random-sample reconciliation requires the
//! responding peer to look up each received key in its own working set and
//! that "interpolation search will take O(log log |B_F|) average time per
//! element" on (pseudo-)random keys. We implement it both to honour that
//! cost model in the simulator and to benchmark the claim (the
//! `recon_speed` bench compares it against binary search).

/// Returns `true` if `key` occurs in the sorted slice `haystack`.
///
/// Keys must be sorted ascending; duplicates are fine. Falls back to a
/// narrowing scan when the interpolation estimate stalls, so worst-case
/// behaviour on adversarially clustered keys is still `O(log n)` via a
/// bisection guard.
#[must_use]
pub fn interpolation_contains(haystack: &[u64], key: u64) -> bool {
    interpolation_find(haystack, key).is_some()
}

/// Returns the index of `key` in sorted `haystack`, or `None`.
///
/// On uniformly distributed keys the expected probe count is
/// `O(log log n)`; every iteration also halves the candidate range in the
/// worst case (we bisect whenever the interpolated probe fails to shrink
/// the range), keeping the adversarial bound logarithmic.
#[must_use]
pub fn interpolation_find(haystack: &[u64], key: u64) -> Option<usize> {
    if haystack.is_empty() {
        return None;
    }
    let mut lo = 0usize;
    let mut hi = haystack.len() - 1;
    while lo <= hi {
        let lo_val = haystack[lo];
        let hi_val = haystack[hi];
        if key < lo_val || key > hi_val {
            return None;
        }
        if lo_val == hi_val {
            return if lo_val == key { Some(lo) } else { None };
        }
        // Interpolate the probable position of `key` in [lo, hi].
        let span = (hi - lo) as u128;
        let offset = (u128::from(key - lo_val) * span) / u128::from(hi_val - lo_val);
        let mut probe = lo + offset as usize;
        // Guard: if interpolation failed to move off the boundary while the
        // range is still wide, bisect instead to guarantee progress.
        if probe == lo && hi - lo > 1 {
            probe = lo + (hi - lo) / 2;
        }
        match haystack[probe].cmp(&key) {
            std::cmp::Ordering::Equal => return Some(probe),
            std::cmp::Ordering::Less => lo = probe + 1,
            std::cmp::Ordering::Greater => {
                if probe == 0 {
                    return None;
                }
                hi = probe - 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng64, Xoshiro256StarStar};

    #[test]
    fn empty_and_singleton() {
        assert_eq!(interpolation_find(&[], 5), None);
        assert_eq!(interpolation_find(&[5], 5), Some(0));
        assert_eq!(interpolation_find(&[5], 4), None);
        assert_eq!(interpolation_find(&[5], 6), None);
    }

    #[test]
    fn finds_all_members() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(interpolation_find(&keys, k), Some(i));
        }
    }

    #[test]
    fn rejects_all_gaps() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
        for i in 0..1000u64 {
            let gap = i * 7 + 4; // never a member
            assert_eq!(interpolation_find(&keys, gap), None);
        }
        assert!(!interpolation_contains(&keys, 0));
        assert!(!interpolation_contains(&keys, u64::MAX));
    }

    #[test]
    fn duplicates_are_found() {
        let keys = [1u64, 2, 2, 2, 3, 9, 9];
        let idx = interpolation_find(&keys, 2).expect("2 is present");
        assert_eq!(keys[idx], 2);
        let idx9 = interpolation_find(&keys, 9).expect("9 is present");
        assert_eq!(keys[idx9], 9);
    }

    #[test]
    fn clustered_keys_terminate() {
        // Heavy clustering defeats interpolation estimates; the bisection
        // guard must still terminate and answer correctly.
        let mut keys = vec![0u64; 500];
        keys.extend(std::iter::repeat_n(u64::MAX - 1, 500));
        keys.push(u64::MAX);
        assert!(interpolation_contains(&keys, 0));
        assert!(interpolation_contains(&keys, u64::MAX - 1));
        assert!(interpolation_contains(&keys, u64::MAX));
        assert!(!interpolation_contains(&keys, 12345));
    }

    #[test]
    fn random_agreement_with_binary_search() {
        let mut rng = Xoshiro256StarStar::new(2024);
        let mut keys: Vec<u64> = (0..10_000).map(|_| rng.next_u64()).collect();
        keys.sort_unstable();
        keys.dedup();
        for _ in 0..10_000 {
            let probe = rng.next_u64();
            let expect = keys.binary_search(&probe).is_ok();
            assert_eq!(interpolation_contains(&keys, probe), expect);
        }
        for &k in keys.iter().step_by(97) {
            assert!(interpolation_contains(&keys, k));
        }
    }
}
