//! Foundation utilities for the informed-content-delivery workspace.
//!
//! This crate provides the deterministic, dependency-free substrate that
//! every other crate in the workspace builds on:
//!
//! * [`hash`] — 64-bit mixing and keyed hash functions used to derive
//!   symbol keys, Bloom-filter probe sequences, and reconciliation-tree
//!   node values.
//! * [`rng`] — deterministic pseudo-random number generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`]). Every simulation in
//!   the workspace is a pure function of a 64-bit seed, which makes all
//!   experiments exactly reproducible.
//! * [`bitvec`] — a compact bit vector backing the Bloom-filter crates.
//! * [`modp`] — arithmetic in GF(p) for the Mersenne prime p = 2^61 - 1,
//!   used by min-wise linear permutations and by the characteristic
//!   polynomial set-reconciliation baseline.
//! * [`stats`] — mean / variance / confidence-interval helpers used by the
//!   experiment harness.
//! * [`search`] — interpolation search over sorted keys (the lookup
//!   structure the paper suggests for random-sample membership probes).
//! * [`partition`] — deterministic weight-balanced contiguous
//!   partitioning, used by the sharded discrete-event engine to split a
//!   node table across worker shards.
//! * [`idset`] — compressed working-set membership: a rank bitmap over a
//!   shared sorted symbol universe, so per-peer inventory sets cost bits
//!   instead of hash-table entries at swarm scale.
//! * [`symbol`] — word-aligned payload buffers ([`symbol::SymbolBuf`])
//!   and the free-list pool ([`symbol::SymbolPool`]) that make the
//!   encode/decode/recode hot path allocation-free at steady state.
//!
//! Nothing in this crate is specific to the paper's algorithms; it exists
//! so that the algorithmic crates stay focused and so the workspace does
//! not depend on external hashing or PRNG crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod hash;
pub mod idset;
pub mod modp;
pub mod partition;
pub mod rng;
pub mod search;
pub mod stats;
pub mod symbol;

pub use bitvec::BitVec;
pub use hash::{FastBuildHasher, FastHashMap, FastHashSet};
pub use idset::{IdSet, IdUniverse};
pub use partition::{balanced_ranges, owner_of};
pub use rng::{Rng64, SplitMix64, Xoshiro256StarStar};
pub use symbol::{PoolStats, SymbolBuf, SymbolPool};
