//! Summary statistics for the experiment harness.
//!
//! Every figure in the paper's evaluation plots a mean over repeated
//! randomized trials. [`Summary`] accumulates samples in one pass (Welford)
//! and reports mean, sample standard deviation, and a normal-approximation
//! 95 % confidence half-width, which EXPERIMENTS.md records next to each
//! reproduced number.

/// One-pass accumulator for mean and variance (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty (callers print counts alongside).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn stderr(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval.
    #[must_use]
    pub fn ci95(&self) -> f64 {
        1.96 * self.stderr()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// Mean of a slice; 0 on empty input.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Linearly interpolated percentile (`q` in [0, 100]) of unsorted data.
///
/// Sorts a copy; intended for end-of-run reporting, not hot loops.
#[must_use]
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant() {
        let s: Summary = std::iter::repeat_n(5.0, 10).collect();
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!(s.variance() < 1e-12);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn summary_known_values() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: Summary = data.iter().copied().collect();
        let first: Summary = data[..37].iter().copied().collect();
        let mut second: Summary = data[37..].iter().copied().collect();
        second.merge(&first);
        assert_eq!(second.count(), all.count());
        assert!((second.mean() - all.mean()).abs() < 1e-9);
        assert!((second.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(second.min(), all.min());
        assert_eq!(second.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: Summary = (0..10).map(|i| i as f64).collect();
        let large: Summary = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(large.ci95() < small.ci95());
    }

    #[test]
    fn percentile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert!((percentile(&xs, 25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((percentile(&xs, 30.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_q() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[3.0, 5.0]), 4.0);
    }
}
