//! Deterministic pseudo-random number generators.
//!
//! Every stochastic component in the workspace — symbol-key generation,
//! degree sampling, scenario construction, loss injection — draws from
//! these generators so that a simulation run is a pure function of its
//! 64-bit seed. The experiment harness averages over an explicit list of
//! seeds and can therefore be re-run bit-for-bit.
//!
//! [`SplitMix64`] is used for seeding and cheap key streams;
//! [`Xoshiro256StarStar`] is the workhorse generator (fast, 256-bit state,
//! passes BigCrush). Both are implemented from the public-domain reference
//! algorithms.

/// Minimal trait for a 64-bit PRNG, with derived helpers for the sampling
/// patterns the workspace needs.
pub trait Rng64 {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, bound)` using Lemire's unbiased multiply-shift
    /// rejection method. `bound` must be non-zero.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Rejection sampling on the low word of the 128-bit product keeps
        // the result exactly uniform, not just approximately. The
        // rejection threshold (`-bound % bound`) costs a hardware divide,
        // so it is computed only in the vanishingly rare case that the
        // low word lands under `bound` — `low ≥ bound ≥ threshold`
        // accepts immediately. The accept/reject decisions (and thus the
        // consumed RNG stream) are identical to the eager form, so every
        // seeded experiment reproduces bit-for-bit.
        let mut wide = u128::from(self.next_u64()) * u128::from(bound);
        let mut low = wide as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                wide = u128::from(self.next_u64()) * u128::from(bound);
                low = wide as u64;
            }
        }
        (wide >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform floating point value in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 yields [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm).
    ///
    /// Runs in `O(k)` expected time independent of `n`, which matters when
    /// sampling a handful of source blocks out of tens of thousands for
    /// every encoded symbol.
    fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut result = Vec::with_capacity(k);
        self.sample_distinct_into(n, k, &mut result);
        result
    }

    /// [`Rng64::sample_distinct`] into a caller-owned vector (cleared
    /// first), so per-symbol sampling allocates nothing at steady state.
    ///
    /// Membership among the ≤ degree-cap picks already made is checked by
    /// linear scan of the output — for the small `k` of every symbol draw
    /// this beats hashing, and it consumes the identical RNG stream, so
    /// all seeded experiments reproduce bit-for-bit.
    fn sample_distinct_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        out.clear();
        for j in (n - k)..n {
            let t = self.index(j + 1);
            let pick = if out.contains(&t) { j } else { t };
            out.push(pick);
        }
    }
}

/// Reusable scratch for [`Rng64::sample_distinct_into`]-equivalent
/// sampling in `O(k)` with no per-draw membership scan.
///
/// Floyd's algorithm needs a "was this index already picked?" test.
/// [`Rng64::sample_distinct_into`] answers it by scanning the output —
/// `O(k²)` compares, painful exactly when the degree distribution's
/// spike fires (k near the cap). This sampler answers it with a
/// generation-stamped array: one indexed load per test, a few KB that
/// stay in L1 for any working set the simulator runs. Draws the
/// identical picks from the identical RNG stream as the trait method.
#[derive(Debug, Clone, Default)]
pub struct DistinctSampler {
    stamp: Vec<u32>,
    generation: u32,
}

impl DistinctSampler {
    /// Creates an empty sampler (storage grows on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Samples `k` distinct indices from `[0, n)` into `out` (cleared
    /// first), exactly as [`Rng64::sample_distinct`] would.
    pub fn sample_into<R: Rng64>(&mut self, rng: &mut R, n: usize, k: usize, out: &mut Vec<usize>) {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        let generation = self.generation;
        out.clear();
        for j in (n - k)..n {
            let t = rng.index(j + 1);
            let pick = if self.stamp[t] == generation { j } else { t };
            self.stamp[pick] = generation;
            out.push(pick);
        }
    }
}

/// SplitMix64: tiny, fast generator used for seeding and key streams.
///
/// One multiply + shifts per output; its 64-bit state walks a Weyl
/// sequence so its period is exactly 2^64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's general-purpose generator.
///
/// 256 bits of state, period 2^256 − 1, and excellent statistical quality.
/// Seeded through SplitMix64 as the authors recommend, so correlated
/// user-provided seeds still yield decorrelated state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is the one forbidden state; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Jump function: advances the state by 2^128 steps, producing a
    /// generator whose stream is disjoint from the original for 2^128
    /// outputs. Used to hand decorrelated streams to parallel sweeps.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }

    /// Returns a decorrelated child generator and advances `self` past its
    /// stream.
    #[must_use]
    pub fn split(&mut self) -> Self {
        let child = self.clone();
        self.jump();
        child
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next_u64(), first);
        assert_eq!(rng2.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256StarStar::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256StarStar::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256StarStar::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Xoshiro256StarStar::new(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = Xoshiro256StarStar::new(11);
        for _ in 0..10_000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256StarStar::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::new(5);
        let mut items: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(items, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = Xoshiro256StarStar::new(9);
        for _ in 0..100 {
            let sample = rng.sample_distinct(50, 10);
            assert_eq!(sample.len(), 10);
            let set: std::collections::HashSet<_> = sample.iter().collect();
            assert_eq!(set.len(), 10, "sample must be distinct");
            assert!(sample.iter().all(|&v| v < 50));
        }
        // Full sample is a permutation of the range.
        let full = rng.sample_distinct(20, 20);
        let set: std::collections::HashSet<_> = full.into_iter().collect();
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn distinct_sampler_matches_trait_method() {
        let mut sampler = DistinctSampler::new();
        let mut out = Vec::new();
        for (n, k) in [(50usize, 10usize), (50, 50), (1, 1), (2000, 50), (7, 3)] {
            // Same seed through both paths: picks must be identical.
            let mut a = Xoshiro256StarStar::new(n as u64 * 31 + k as u64);
            let mut b = a.clone();
            let expect = a.sample_distinct(n, k);
            sampler.sample_into(&mut b, n, k, &mut out);
            assert_eq!(out, expect, "divergence at n={n} k={k}");
            // And the generators are left in the same state.
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_produces_disjoint_prefix() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = a.clone();
        b.jump();
        let sa: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn split_children_decorrelated() {
        let mut root = Xoshiro256StarStar::new(77);
        let mut c1 = root.split();
        let mut c2 = root.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
