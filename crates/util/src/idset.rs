//! Compressed working-set membership over a shared symbol universe.
//!
//! Symbol ids in this codebase are mix64-hashed `u64`s — effectively
//! uniform random points in `0..2^64` — so a bitmap keyed by raw id
//! values cannot compress them. What *can* be exploited is that every
//! peer in a swarm draws from the same finite pool: the object's symbol
//! universe. [`IdSet`] stores that universe once (sorted, behind an
//! `Arc` so a million peers share a single copy) and represents each
//! peer's membership as a plain bitmap over universe *ranks*. Per-set
//! cost is `ceil(universe/64)` words — under 2 KiB for a 16k-symbol
//! object versus tens of bytes *per id* for a hash set — and queries
//! are a binary search plus a bit test.

use std::sync::Arc;

/// A membership set over a fixed, shared universe of ids.
///
/// Construction sorts and deduplicates the universe; all sets built via
/// [`IdSet::fresh`] on the same [`IdUniverse`] share that one
/// allocation. Ids outside the universe are never members and cannot be
/// inserted.
#[derive(Clone, Debug)]
pub struct IdSet {
    universe: IdUniverse,
    words: Vec<u64>,
    len: usize,
}

/// A sorted, deduplicated, reference-counted id universe.
///
/// Cheap to clone; the backing slice is shared.
#[derive(Clone, Debug)]
pub struct IdUniverse {
    ids: Arc<[u64]>,
}

impl IdUniverse {
    /// Builds a universe from arbitrary ids (sorted and deduplicated
    /// internally).
    #[must_use]
    pub fn new(mut ids: Vec<u64>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { ids: ids.into() }
    }

    /// Number of distinct ids in the universe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the universe is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Rank of `id` in the sorted universe, if present.
    #[must_use]
    pub fn rank(&self, id: u64) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Creates an empty membership set over this universe.
    #[must_use]
    pub fn empty_set(&self) -> IdSet {
        IdSet {
            universe: self.clone(),
            words: vec![0u64; self.ids.len().div_ceil(64)],
            len: 0,
        }
    }
}

impl IdSet {
    /// Empty set over a freshly built universe. Prefer building one
    /// [`IdUniverse`] and calling [`IdUniverse::empty_set`] when many
    /// sets share a pool.
    #[must_use]
    pub fn fresh(universe: &IdUniverse) -> Self {
        universe.empty_set()
    }

    /// The shared universe this set indexes into.
    #[must_use]
    pub fn universe(&self) -> &IdUniverse {
        &self.universe
    }

    /// Inserts `id`; returns `true` if it was newly added.
    ///
    /// # Panics
    /// Panics if `id` is not in the universe — membership over unknown
    /// ids is a logic error at every call site, not a recoverable case.
    pub fn insert(&mut self, id: u64) -> bool {
        let rank = self
            .universe
            .rank(id)
            .expect("id outside the shared universe");
        let (word, bit) = (rank / 64, rank % 64);
        let mask = 1u64 << bit;
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        self.len += 1;
        true
    }

    /// Whether `id` is a member. Ids outside the universe are simply
    /// not members.
    #[must_use]
    pub fn contains(&self, id: u64) -> bool {
        match self.universe.rank(id) {
            Some(rank) => self.words[rank / 64] & (1u64 << (rank % 64)) != 0,
            None => false,
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all members, keeping the universe and capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates members in sorted id order (universe rank order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.words.iter().enumerate().flat_map(move |(w, &word)| {
            let ids = &self.universe.ids;
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(ids[w * 64 + bit])
            })
        })
    }

    /// Heap bytes owned by this set alone (the shared universe is not
    /// charged — it is amortized across every set built over it).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::mix64;

    fn sparse_ids(n: u64) -> Vec<u64> {
        (0..n).map(|i| mix64(0x1D5E_7000 ^ i)).collect()
    }

    #[test]
    fn insert_contains_len_roundtrip() {
        let pool = sparse_ids(100);
        let uni = IdUniverse::new(pool.clone());
        let mut set = uni.empty_set();
        assert!(set.is_empty());
        for (i, &id) in pool.iter().enumerate() {
            assert!(!set.contains(id));
            assert!(set.insert(id));
            assert!(!set.insert(id), "second insert must report present");
            assert!(set.contains(id));
            assert_eq!(set.len(), i + 1);
        }
    }

    #[test]
    fn iterates_in_sorted_order() {
        let pool = sparse_ids(257);
        let uni = IdUniverse::new(pool.clone());
        let mut set = uni.empty_set();
        // Insert in original (unsorted, hash-shuffled) order.
        for &id in pool.iter().step_by(3) {
            set.insert(id);
        }
        let got: Vec<u64> = set.iter().collect();
        let mut want: Vec<u64> = pool.iter().copied().step_by(3).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn outside_universe_is_never_member() {
        let uni = IdUniverse::new(sparse_ids(10));
        let set = uni.empty_set();
        assert!(!set.contains(0xDEAD_BEEF));
    }

    #[test]
    #[should_panic(expected = "outside the shared universe")]
    fn outside_universe_insert_panics() {
        let uni = IdUniverse::new(sparse_ids(10));
        let mut set = uni.empty_set();
        set.insert(0xDEAD_BEEF);
    }

    #[test]
    fn universe_is_shared_not_copied() {
        let uni = IdUniverse::new(sparse_ids(1000));
        let a = uni.empty_set();
        let b = uni.empty_set();
        assert!(Arc::ptr_eq(&a.universe.ids, &b.universe.ids));
        // Per-set footprint is the bitmap alone: 1000 bits -> 16 words.
        assert_eq!(a.memory_bytes(), 16 * 8);
        assert_eq!(b.memory_bytes(), 16 * 8);
    }

    #[test]
    fn clear_retains_universe() {
        let uni = IdUniverse::new(sparse_ids(64));
        let mut set = uni.empty_set();
        for &id in &sparse_ids(64) {
            set.insert(id);
        }
        set.clear();
        assert_eq!(set.len(), 0);
        assert!(set.iter().next().is_none());
        assert!(set.insert(sparse_ids(1)[0]));
    }

    #[test]
    fn duplicate_universe_ids_deduplicate() {
        let mut pool = sparse_ids(20);
        pool.extend(sparse_ids(20));
        let uni = IdUniverse::new(pool);
        assert_eq!(uni.len(), 20);
    }
}
