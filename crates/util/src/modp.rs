//! Arithmetic in GF(p) for the Mersenne prime p = 2^61 − 1.
//!
//! Two consumers:
//!
//! * **Min-wise linear permutations** (§4 of the paper): π(x) = a·x + b
//!   (mod p) is a bijection on [0, p) whenever a ≠ 0, which is exactly the
//!   "simple permutations" substitution the paper makes for truly random
//!   permutations. A Mersenne modulus makes the reduction two adds and a
//!   mask instead of a division.
//! * **Characteristic-polynomial set reconciliation** (§5.1 / \[19\]): the
//!   exact baseline needs field inversion, polynomial evaluation and
//!   root-finding over a prime field.
//!
//! Elements are `u64` values in `[0, P)`. Operations are `O(1)` with no
//! branches beyond the final conditional subtraction.

/// The Mersenne prime 2^61 − 1.
pub const P: u64 = (1u64 << 61) - 1;

/// Reduces an arbitrary `u128` product into `[0, P)`.
#[inline]
#[must_use]
pub fn reduce128(x: u128) -> u64 {
    // Split into 61-bit limbs; since P = 2^61 - 1, 2^61 ≡ 1 (mod P), so the
    // limbs simply add.
    let lo = (x & u128::from(P)) as u64;
    let mid = ((x >> 61) & u128::from(P)) as u64;
    let hi = (x >> 122) as u64; // < 2^6
    let mut s = lo + mid + hi;
    if s >= P {
        s -= P;
    }
    if s >= P {
        s -= P;
    }
    s
}

/// Reduces a value `< 2^122 + 2^61` — the range of `a·x + b` for field
/// elements — into `[0, P)` with a Lemire/Barrett-style fused fold:
/// one two-limb split, one carry fold, and a *single* conditional
/// subtraction, versus [`reduce128`]'s three-limb split and double
/// subtraction. This is the min-wise sketch build's inner operation
/// (128 executions per inserted key), where the saved ALU work is
/// measurable; value-identical to [`reduce128`] on the whole domain
/// (proptested below and pinned by the sketch-identity test in
/// `icd-sketch`).
#[inline]
#[must_use]
pub fn reduce122(x: u128) -> u64 {
    debug_assert!(x < (1u128 << 122) + (1u128 << 61));
    // x = lo + 2^61·hi with hi < 2^61 + 1; 2^61 ≡ 1 (mod P) so x ≡ lo + hi.
    let lo = (x as u64) & P;
    let hi = (x >> 61) as u64;
    // s < 2^62 + 1: fold once more; (s & P) + (s >> 61) ≤ P + 2.
    let s = lo + hi;
    let folded = (s & P) + (s >> 61);
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// Canonicalizes any `u64` into `[0, P)`.
#[inline]
#[must_use]
pub fn canon(x: u64) -> u64 {
    let folded = (x & P) + (x >> 61);
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// Modular addition.
#[inline]
#[must_use]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let s = a + b;
    if s >= P {
        s - P
    } else {
        s
    }
}

/// Modular subtraction.
#[inline]
#[must_use]
pub fn sub(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    if a >= b {
        a - b
    } else {
        a + P - b
    }
}

/// Modular negation.
#[inline]
#[must_use]
pub fn neg(a: u64) -> u64 {
    debug_assert!(a < P);
    if a == 0 {
        0
    } else {
        P - a
    }
}

/// Modular multiplication.
#[inline]
#[must_use]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    reduce128(u128::from(a) * u128::from(b))
}

/// Modular exponentiation by squaring.
#[must_use]
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    debug_assert!(base < P);
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Modular inverse via Fermat's little theorem: a^(p−2).
///
/// Panics on zero, which has no inverse; callers reconciling sets must
/// guard divisions themselves (a zero denominator means an evaluation
/// point collided with a set element).
#[must_use]
pub fn inv(a: u64) -> u64 {
    assert!(a != 0, "zero has no modular inverse");
    pow(a, P - 2)
}

/// Modular division `a / b`.
#[inline]
#[must_use]
pub fn div(a: u64, b: u64) -> u64 {
    mul(a, inv(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_sane() {
        assert_eq!(P, 2_305_843_009_213_693_951);
    }

    #[test]
    fn add_sub_inverse() {
        let pairs = [(0u64, 0u64), (1, P - 1), (P - 1, P - 1), (12345, 67890)];
        for (a, b) in pairs {
            assert_eq!(sub(add(a, b), b), a);
            assert_eq!(add(sub(a, b), b), a);
        }
    }

    #[test]
    fn neg_is_additive_inverse() {
        for a in [0u64, 1, 2, P / 2, P - 1] {
            assert_eq!(add(a, neg(a)), 0);
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let samples = [0u64, 1, 2, 3, 1 << 30, P - 1, P - 2, 987_654_321];
        for &a in &samples {
            for &b in &samples {
                let expect = ((u128::from(a) * u128::from(b)) % u128::from(P)) as u64;
                assert_eq!(mul(a, b), expect, "mul({a}, {b})");
            }
        }
    }

    #[test]
    fn reduce128_edge_cases() {
        assert_eq!(reduce128(0), 0);
        assert_eq!(reduce128(u128::from(P)), 0);
        assert_eq!(reduce128(u128::from(P) + 1), 1);
        // Largest possible product of two field elements.
        let big = u128::from(P - 1) * u128::from(P - 1);
        let expect = (big % u128::from(P)) as u64;
        assert_eq!(reduce128(big), expect);
    }

    #[test]
    fn reduce122_matches_reduce128_on_its_domain() {
        // Edges of the a·x + b domain plus structured probes.
        let edges = [
            0u128,
            1,
            u128::from(P) - 1,
            u128::from(P),
            u128::from(P) + 1,
            1 << 61,
            (1 << 61) - 1,
            (1 << 122) - 1,
            (1 << 122) + (1 << 61) - 1, // domain maximum
            u128::from(P - 1) * u128::from(P - 1) + u128::from(P - 1),
        ];
        for x in edges {
            assert_eq!(reduce122(x), reduce128(x), "x = {x}");
        }
        // Dense pseudo-random sweep over the domain.
        let mut state = 0x1CD_2002u64;
        for _ in 0..50_000 {
            // SplitMix64 step (inline to keep util dependency-free here).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let a = (z ^ (z >> 31)) % P;
            let b = z.rotate_left(17) % P;
            let x = u128::from(a) * u128::from(b) + u128::from(b);
            assert_eq!(reduce122(x), reduce128(x), "a={a} b={b}");
            assert_eq!(reduce122(x), (x % u128::from(P)) as u64);
        }
    }

    #[test]
    fn canon_folds_high_bits() {
        assert_eq!(canon(P), 0);
        assert_eq!(canon(P + 5), 5);
        assert_eq!(canon(u64::MAX), (u64::MAX % P));
    }

    #[test]
    fn pow_and_fermat() {
        assert_eq!(pow(3, 0), 1);
        assert_eq!(pow(3, 1), 3);
        assert_eq!(pow(3, 2), 9);
        // Fermat: a^(p-1) = 1 for a != 0.
        for a in [1u64, 2, 7, 1 << 40, P - 1] {
            assert_eq!(pow(a, P - 1), 1, "fermat fails for {a}");
        }
    }

    #[test]
    fn inv_is_multiplicative_inverse() {
        for a in [1u64, 2, 3, 12345, P - 1, 1 << 50] {
            assert_eq!(mul(a, inv(a)), 1, "inverse fails for {a}");
        }
    }

    #[test]
    #[should_panic(expected = "no modular inverse")]
    fn inv_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn div_consistency() {
        let a = 998_877;
        let b = 665_544;
        let q = div(a, b);
        assert_eq!(mul(q, b), a);
    }

    #[test]
    fn linear_map_is_bijective_on_sample() {
        // a*x + b mod p with a != 0 must be injective; sample heavily.
        let a = 0x1234_5678_9ABCu64 % P;
        let b = 0x0FED_CBA9u64 % P;
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            let y = add(mul(a, x), b);
            assert!(seen.insert(y), "collision at x={x}");
        }
    }
}
