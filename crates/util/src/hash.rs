//! 64-bit mixing and keyed hashing.
//!
//! The paper assumes element keys "are random, since the key space can
//! always be transformed by applying a (pseudo-)random hash function"
//! (§4). Everything downstream — min-wise permutations, Bloom probes,
//! reconciliation-tree balancing — relies on that transformation. The
//! functions here provide it without pulling in an external hashing crate.
//!
//! All hashes are deterministic and stable across platforms and runs; the
//! simulator's reproducibility depends on this.

/// The SplitMix64 finalizer: a fast, high-quality 64-bit mixer.
///
/// This is the `mix` function from Steele et al.'s SplitMix generator and
/// passes the usual avalanche tests: flipping any input bit flips each
/// output bit with probability ~1/2. It is a bijection on `u64`, so it
/// never introduces collisions on its own.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Inverse of [`mix64`] (restricted to the multiply/xorshift core).
///
/// Used only in tests to prove bijectivity, but exported because the
/// reconciliation crates occasionally need to recover a pre-image when
/// mapping tree leaves back to element keys.
#[inline]
#[must_use]
pub fn unmix64(mut x: u64) -> u64 {
    x = xorshift_right_inverse(x, 31);
    x = x.wrapping_mul(0x3196_42B2_D24D_8EC3); // modular inverse of 0x94D049BB133111EB
    x = xorshift_right_inverse(x, 27);
    x = x.wrapping_mul(0x96DE_1B17_3F11_9089); // modular inverse of 0xBF58476D1CE4E5B9
    x = xorshift_right_inverse(x, 30);
    x.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

/// Inverts `x ^= x >> shift` for `shift >= 1`.
#[inline]
fn xorshift_right_inverse(x: u64, shift: u32) -> u64 {
    debug_assert!(shift >= 1);
    let mut result = x;
    let mut s = shift;
    while s < 64 {
        result = x ^ (result >> shift);
        s += shift;
    }
    result
}

/// A keyed 64-bit hash: mixes `value` under a 64-bit `seed`.
///
/// Distinct seeds give (empirically) independent hash functions, which is
/// how the Bloom filters and reconciliation trees derive their families of
/// hash functions. The construction is two rounds of [`mix64`] with the
/// seed folded in between; it is *not* cryptographic, matching the paper's
/// threat model (cooperating peers, no adversary).
#[inline]
#[must_use]
pub fn hash64(value: u64, seed: u64) -> u64 {
    mix64(mix64(value ^ 0x510E_527F_ADE6_82D1).wrapping_add(seed ^ 0x9B05_688C_2B3E_6C1F))
}

/// Hashes a byte slice to a 64-bit value under `seed` (FNV-1a core with a
/// [`mix64`] finalizer).
///
/// Used to derive stable symbol keys from payload bytes in examples and to
/// checksum reassembled files in tests.
#[must_use]
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut state = FNV_OFFSET ^ mix64(seed);
    // Consume 8-byte words first for throughput, then the tail.
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        state = (state ^ word).wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        state = (state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    mix64(state)
}

/// A family of pairwise-independent-style hash functions indexed by `i`,
/// derived from two base hashes (Kirsch–Mitzenmacher double hashing).
///
/// `g_i(x) = h1(x) + i * h2(x)`, which is the standard way to simulate `k`
/// Bloom-filter hash functions from two. Dietzfelbinger et al. and
/// Kirsch–Mitzenmacher show this preserves the asymptotic false-positive
/// rate; our Bloom calibration experiment confirms it empirically against
/// the analytic `(1 - e^{-kn/m})^k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleHash {
    h1: u64,
    h2: u64,
}

impl DoubleHash {
    /// Computes the two base hashes of `value` under `seed`.
    #[inline]
    #[must_use]
    pub fn new(value: u64, seed: u64) -> Self {
        let h1 = hash64(value, seed);
        // Force h2 odd so the probe sequence has full period modulo powers
        // of two and never degenerates to a constant.
        let h2 = hash64(value, seed ^ 0xA5A5_A5A5_A5A5_A5A5) | 1;
        Self { h1, h2 }
    }

    /// The `i`-th derived hash.
    #[inline]
    #[must_use]
    pub fn probe(&self, i: u64) -> u64 {
        self.h1.wrapping_add(i.wrapping_mul(self.h2))
    }

    /// The `i`-th derived hash reduced to `[0, bound)` via the
    /// multiply-shift trick (unbiased enough for filter indexing and
    /// cheaper than `%`).
    #[inline]
    #[must_use]
    pub fn probe_bounded(&self, i: u64, bound: usize) -> usize {
        debug_assert!(bound > 0);
        let h = self.probe(i);
        ((u128::from(h) * bound as u128) >> 64) as usize
    }
}

/// Reduces a 64-bit hash to `[0, bound)` without the modulo bias of `%`
/// (Lemire's multiply-shift reduction).
#[inline]
#[must_use]
pub fn reduce(hash: u64, bound: usize) -> usize {
    debug_assert!(bound > 0);
    ((u128::from(hash) * bound as u128) >> 64) as usize
}

/// A [`std::hash::Hasher`] built on [`mix64`], for hash maps keyed by
/// 64-bit symbol ids.
///
/// The std default (SipHash) defends against adversarial key choice; the
/// paper's threat model has none (cooperating peers), and the data plane
/// probes id-keyed maps on every received symbol, so the workspace trades
/// DoS hardening it does not need for a one-multiply-per-lookup hasher.
/// Deterministic across runs and platforms, like everything else here.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rare: the workspace keys on u64).
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
            self.state = mix64(self.state ^ word);
        }
        // Fold the tail *with its length* so byte keys differing only in
        // leading zero bytes (e.g. "\x01" vs "\x00\x01") hash apart.
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            let mut tail = remainder.len() as u64;
            for &b in remainder {
                tail = (tail << 8) | u64::from(b);
            }
            self.state = mix64(self.state ^ tail);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.state = mix64(self.state ^ value);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write_u64(u64::from(value));
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FastHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FastBuildHasher;

impl std::hash::BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// `HashMap` keyed through [`FastHasher`] — the data-plane map type.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// `HashSet` keyed through [`FastHasher`] — the data-plane set type.
pub type FastHashSet<K> = std::collections::HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_samples() {
        for i in 0..10_000u64 {
            let x = i.wrapping_mul(0x2545_F491_4F6C_DD1D);
            assert_eq!(unmix64(mix64(x)), x, "mix64 must invert at {x}");
        }
    }

    #[test]
    fn mix64_avalanche_is_roughly_half() {
        // Flipping one input bit should flip ~32 of 64 output bits.
        let mut total_flips = 0u64;
        let trials = 2_000u64;
        for t in 0..trials {
            let x = mix64(t); // arbitrary spread-out inputs
            let bit = (t % 64) as u32;
            let flipped = mix64(x ^ (1u64 << bit)) ^ mix64(x);
            total_flips += u64::from(flipped.count_ones());
        }
        let avg = total_flips as f64 / trials as f64;
        assert!(
            (24.0..40.0).contains(&avg),
            "avalanche average {avg} outside [24, 40]"
        );
    }

    #[test]
    fn hash64_differs_across_seeds() {
        let x = 42;
        let a = hash64(x, 1);
        let b = hash64(x, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_bytes_stable_and_seed_sensitive() {
        let data = b"informed content delivery";
        assert_eq!(hash_bytes(data, 7), hash_bytes(data, 7));
        assert_ne!(hash_bytes(data, 7), hash_bytes(data, 8));
        assert_ne!(hash_bytes(&data[..10], 7), hash_bytes(&data[..11], 7));
    }

    #[test]
    fn hash_bytes_handles_all_tail_lengths() {
        // Exercise every remainder length of the 8-byte chunk loop.
        let base: Vec<u8> = (0u8..32).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=base.len() {
            assert!(seen.insert(hash_bytes(&base[..len], 3)), "collision at {len}");
        }
    }

    #[test]
    fn double_hash_probes_are_distinct() {
        let dh = DoubleHash::new(123, 456);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(dh.probe(i));
        }
        assert_eq!(seen.len(), 64, "probe sequence must not repeat early");
    }

    #[test]
    fn probe_bounded_respects_bound() {
        let dh = DoubleHash::new(99, 7);
        for bound in [1usize, 2, 3, 1000, 40_000] {
            for i in 0..32 {
                assert!(dh.probe_bounded(i, bound) < bound);
            }
        }
    }

    #[test]
    fn fast_hasher_is_deterministic_and_spreads() {
        use std::hash::{BuildHasher, Hasher};
        let h = |v: u64| {
            let mut hasher = FastBuildHasher.build_hasher();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
        // Byte path agrees with itself and differs across lengths.
        let hb = |bytes: &[u8]| {
            let mut hasher = FastBuildHasher.build_hasher();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(hb(b"abcdefgh"), hb(b"abcdefgh"));
        assert_ne!(hb(b"abcdefgh"), hb(b"abcdefg"));
        // Leading zero bytes in the tail must not collide.
        assert_ne!(hb(b"\x01"), hb(b"\x00\x01"));
        assert_ne!(hb(b"\x00"), hb(b"\x00\x00"));
        // Sequential keys land in distinct buckets of a small table.
        let mut buckets = std::collections::HashSet::new();
        for i in 0..1024u64 {
            buckets.insert(h(i) % 64);
        }
        assert_eq!(buckets.len(), 64, "sequential keys must spread");
    }

    #[test]
    fn fast_hash_set_usable() {
        let mut set: FastHashSet<u64> = FastHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
        assert!(set.contains(&7));
        let mut map: FastHashMap<u64, u32> = FastHashMap::default();
        map.insert(1, 2);
        assert_eq!(map.get(&1), Some(&2));
    }

    #[test]
    fn reduce_is_roughly_uniform() {
        let bound = 10usize;
        let mut counts = vec![0u32; bound];
        for i in 0..10_000u64 {
            counts[reduce(mix64(i), bound)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
