//! Property-based tests for the utility substrate: field laws, hash
//! bijectivity, bit-vector serialization, and PRNG sampling contracts.

use icd_util::bitvec::BitVec;
use icd_util::hash::{hash64, mix64, unmix64};
use icd_util::modp::{self, P};
use icd_util::rng::{Rng64, Xoshiro256StarStar};
use icd_util::search::interpolation_find;
use proptest::prelude::*;

fn field_elem() -> impl Strategy<Value = u64> {
    (0..P).prop_map(|x| x)
}

proptest! {
    #[test]
    fn mix64_is_bijective(x in any::<u64>()) {
        prop_assert_eq!(unmix64(mix64(x)), x);
    }

    #[test]
    fn hash64_is_seed_separated(x in any::<u64>(), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        // Not a guarantee for all inputs (collisions exist), but over
        // random draws a collision would indicate broken mixing.
        prop_assert_ne!(hash64(x, s1), hash64(x, s2));
    }

    #[test]
    fn field_addition_group_laws(a in field_elem(), b in field_elem(), c in field_elem()) {
        prop_assert_eq!(modp::add(a, b), modp::add(b, a));
        prop_assert_eq!(modp::add(modp::add(a, b), c), modp::add(a, modp::add(b, c)));
        prop_assert_eq!(modp::add(a, 0), a);
        prop_assert_eq!(modp::add(a, modp::neg(a)), 0);
    }

    #[test]
    fn field_multiplication_laws(a in field_elem(), b in field_elem(), c in field_elem()) {
        prop_assert_eq!(modp::mul(a, b), modp::mul(b, a));
        prop_assert_eq!(modp::mul(modp::mul(a, b), c), modp::mul(a, modp::mul(b, c)));
        prop_assert_eq!(modp::mul(a, 1), a);
        // Distributivity.
        prop_assert_eq!(
            modp::mul(a, modp::add(b, c)),
            modp::add(modp::mul(a, b), modp::mul(a, c))
        );
    }

    #[test]
    fn field_inverse_law(a in 1..P) {
        prop_assert_eq!(modp::mul(a, modp::inv(a)), 1);
        prop_assert_eq!(modp::div(modp::mul(a, 7), a), 7);
    }

    #[test]
    fn bitvec_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..500)) {
        let mut v = BitVec::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set(i);
            }
        }
        let back = BitVec::from_bytes(&v.to_bytes(), bits.len()).unwrap();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(back.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn rng_below_is_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Xoshiro256StarStar::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn sample_distinct_contract(seed in any::<u64>(), n in 1usize..200, frac in 0.0f64..=1.0) {
        let k = ((n as f64) * frac) as usize;
        let mut rng = Xoshiro256StarStar::new(seed);
        let sample = rng.sample_distinct(n, k);
        prop_assert_eq!(sample.len(), k);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(set.len(), k);
        prop_assert!(sample.iter().all(|&v| v < n));
    }

    #[test]
    fn interpolation_agrees_with_binary_search(
        mut keys in proptest::collection::vec(any::<u64>(), 0..300),
        probes in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        keys.sort_unstable();
        keys.dedup();
        for p in probes {
            let expect = keys.binary_search(&p).ok();
            let got = interpolation_find(&keys, p);
            prop_assert_eq!(got.is_some(), expect.is_some());
            if let Some(idx) = got {
                prop_assert_eq!(keys[idx], p);
            }
        }
    }
}
