//! Property-based tests for approximate reconciliation trees: structural
//! canonicity, incremental-vs-batch agreement, and search soundness.

use icd_art::{search_differences, ArtParams, ArtSummary, ReconciliationTree, SummaryParams};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_is_canonical_in_contents(mut keys in proptest::collection::vec(any::<u64>(), 1..300)) {
        let params = ArtParams::default();
        let fwd = ReconciliationTree::from_keys(params, keys.iter().copied());
        keys.reverse();
        let mut inc = ReconciliationTree::new(params);
        for &k in &keys {
            inc.insert(k);
        }
        prop_assert_eq!(fwd.root_value(), inc.root_value());
        prop_assert_eq!(fwd.len(), inc.len());
    }

    #[test]
    fn root_value_xor_law(
        keys in proptest::collection::hash_set(any::<u64>(), 2..200),
        split in 1usize..100,
    ) {
        // root(A ∪ B) = root(A) ⊕ root(B) for disjoint A, B.
        let params = ArtParams::default();
        let keys: Vec<u64> = keys.into_iter().collect();
        let split = split.min(keys.len() - 1);
        let a = ReconciliationTree::from_keys(params, keys[..split].iter().copied());
        let b = ReconciliationTree::from_keys(params, keys[split..].iter().copied());
        let all = ReconciliationTree::from_keys(params, keys.iter().copied());
        prop_assert_eq!(
            all.root_value().unwrap(),
            a.root_value().unwrap() ^ b.root_value().unwrap()
        );
    }

    #[test]
    fn search_is_sound(
        shared in proptest::collection::hash_set(any::<u64>(), 1..250),
        fresh in proptest::collection::hash_set(any::<u64>(), 0..40),
        leaf_bits in 1.0f64..8.0,
        correction in 0u32..6,
    ) {
        let shared: HashSet<u64> = shared.difference(&fresh).copied().collect();
        prop_assume!(!shared.is_empty());
        let params = ArtParams::default();
        let a = ReconciliationTree::from_keys(params, shared.iter().copied());
        let b = ReconciliationTree::from_keys(params, shared.iter().chain(fresh.iter()).copied());
        let summary = ArtSummary::build(&a, SummaryParams::with_split(8.0, leaf_bits, correction));
        let out = search_differences(&b, &summary);
        // Soundness: reported ⊆ fresh; uniqueness: no duplicates.
        let reported: HashSet<u64> = out.missing_at_peer.iter().copied().collect();
        prop_assert_eq!(reported.len(), out.missing_at_peer.len());
        for k in &out.missing_at_peer {
            prop_assert!(fresh.contains(k));
        }
    }

    #[test]
    fn identical_sets_search_empty(keys in proptest::collection::hash_set(any::<u64>(), 1..300)) {
        let params = ArtParams::default();
        let t = ReconciliationTree::from_keys(params, keys.iter().copied());
        let summary = ArtSummary::build(&t, SummaryParams::standard());
        let out = search_differences(&t, &summary);
        prop_assert!(out.missing_at_peer.is_empty());
    }
}
