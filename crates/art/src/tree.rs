//! The collapsed hashed trie underlying an approximate reconciliation
//! tree.
//!
//! Nodes live in an arena (`Vec`-indexed) — no `Rc`/`RefCell`, no
//! recursion-depth hazards on adversarial inputs. The tree supports both
//! batch construction (`from_keys`, O(n log n)) and incremental insertion
//! (`insert`, O(depth)), the latter being what a peer uses as symbols
//! arrive mid-transfer.

use icd_util::hash::hash64;

/// Protocol-level parameters shared by all peers building comparable
/// trees. Like the min-wise permutation family, these are "fixed
/// universally off-line": two trees are only comparable if their params
/// match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtParams {
    /// Seed for the position hash (tree balancing, §5.3's first hash).
    pub position_seed: u64,
    /// Seed for the value hash (spatial decorrelation, §5.3's second
    /// hash into `[1, h)`).
    pub value_seed: u64,
}

impl Default for ArtParams {
    fn default() -> Self {
        Self {
            position_seed: 0x4152_545F_504F_5331, // "ART_POS1"
            value_seed: 0x4152_545F_5641_4C31,    // "ART_VAL1"
        }
    }
}

impl ArtParams {
    /// Position of a key: a uniform 64-bit string; the trie is built on
    /// its bits, most-significant first.
    #[inline]
    #[must_use]
    pub fn position(&self, key: u64) -> u64 {
        hash64(key, self.position_seed)
    }

    /// Value of a key: the per-element hash whose XORs label tree nodes.
    /// Zero is remapped so values lie in `[1, 2^64)` per the paper (an
    /// all-zero XOR would then only arise from genuinely empty content or
    /// an even multiset, never from a single element).
    #[inline]
    #[must_use]
    pub fn value(&self, key: u64) -> u64 {
        let v = hash64(key, self.value_seed);
        if v == 0 {
            1
        } else {
            v
        }
    }
}

/// Arena index of a node.
pub(crate) type NodeId = u32;

#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// A leaf holds exactly one position (w.h.p. one key; collisions in
    /// the 64-bit position space would share a leaf, preserving
    /// correctness of node values).
    Leaf {
        value: u64,
        position: u64,
        keys: Vec<u64>,
    },
    /// An internal node splits on `bit` (0 = MSB): left subtree has the
    /// bit clear, right subtree set. `value` is the XOR of both children.
    Internal {
        value: u64,
        bit: u32,
        left: NodeId,
        right: NodeId,
    },
}

impl Node {
    #[inline]
    pub(crate) fn value(&self) -> u64 {
        match self {
            Node::Leaf { value, .. } | Node::Internal { value, .. } => *value,
        }
    }
}

/// A peer's reconciliation tree over its working-set keys.
#[derive(Debug, Clone)]
pub struct ReconciliationTree {
    params: ArtParams,
    nodes: Vec<Node>,
    root: Option<NodeId>,
    len: usize,
}

impl ReconciliationTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new(params: ArtParams) -> Self {
        Self {
            params,
            nodes: Vec::new(),
            root: None,
            len: 0,
        }
    }

    /// Builds a tree over `keys` (duplicates are ignored).
    #[must_use]
    pub fn from_keys<I: IntoIterator<Item = u64>>(params: ArtParams, keys: I) -> Self {
        let mut items: Vec<(u64, u64)> = keys
            .into_iter()
            .map(|k| (params.position(k), k))
            .collect();
        items.sort_unstable();
        items.dedup_by_key(|(p, k)| (*p, *k));
        // Drop duplicate keys (same position AND key).
        let mut tree = Self::new(params);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        let root = tree.build_range(&items, 0);
        tree.root = Some(root);
        tree
    }

    /// Recursive batch construction over a position-sorted slice.
    /// `depth` is the next bit to examine (0 = MSB). Single-child chains
    /// are collapsed by advancing `depth` without creating nodes.
    fn build_range(&mut self, items: &[(u64, u64)], mut depth: u32) -> NodeId {
        debug_assert!(!items.is_empty());
        // All same position → leaf (holds all colliding keys).
        if items.first().map(|(p, _)| p) == items.last().map(|(p, _)| p) {
            let position = items[0].0;
            let keys: Vec<u64> = items.iter().map(|&(_, k)| k).collect();
            let value = keys
                .iter()
                .fold(0u64, |acc, &k| acc ^ self.params.value(k));
            return self.push(Node::Leaf {
                value,
                position,
                keys,
            });
        }
        // Find the first bit where the slice splits (collapse equal
        // prefixes). Positions differ, so a split bit must exist.
        loop {
            debug_assert!(depth < 64, "identical positions cannot reach depth 64");
            let mask = 1u64 << (63 - depth);
            let first_set = items[0].0 & mask != 0;
            let last_set = items[items.len() - 1].0 & mask != 0;
            if first_set == last_set {
                depth += 1;
                continue;
            }
            // Sorted by position ⇒ split point is where the bit flips.
            let split = items.partition_point(|&(p, _)| p & mask == 0);
            let left = self.build_range(&items[..split], depth + 1);
            let right = self.build_range(&items[split..], depth + 1);
            let value = self.nodes[left as usize].value() ^ self.nodes[right as usize].value();
            return self.push(Node::Internal {
                value,
                bit: depth,
                left,
                right,
            });
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = u32::try_from(self.nodes.len()).expect("tree exceeds u32 arena");
        self.nodes.push(node);
        id
    }

    /// Inserts one key incrementally in O(depth): descends to the
    /// insertion point, splices a new internal node if needed, and XORs
    /// the new value into every node along the path.
    ///
    /// Returns `false` (and changes nothing) if the key was already
    /// present.
    pub fn insert(&mut self, key: u64) -> bool {
        let position = self.params.position(key);
        let value = self.params.value(key);
        let Some(root) = self.root else {
            let id = self.push(Node::Leaf {
                value,
                position,
                keys: vec![key],
            });
            self.root = Some(id);
            self.len = 1;
            return true;
        };
        // Descend, recording the path for the value update.
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur = root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Internal { bit, left, right, .. } => {
                    let (bit, left, right) = (*bit, *left, *right);
                    // If the new position diverges from this subtree's
                    // common prefix *above* this split bit, splice here.
                    if let Some(diverge) = self.diverge_bit(cur, position, bit) {
                        self.splice(cur, &path, position, value, key, diverge);
                        return true;
                    }
                    path.push(cur);
                    cur = if position & (1u64 << (63 - bit)) == 0 {
                        left
                    } else {
                        right
                    };
                }
                Node::Leaf {
                    position: leaf_pos,
                    keys,
                    ..
                } => {
                    let leaf_pos = *leaf_pos;
                    if leaf_pos == position {
                        if keys.contains(&key) {
                            return false; // duplicate
                        }
                        // 64-bit position collision: extend this leaf.
                        if let Node::Leaf { value: v, keys, .. } = &mut self.nodes[cur as usize] {
                            *v ^= value;
                            keys.push(key);
                        }
                        for id in path {
                            self.xor_value(id, value);
                        }
                        self.len += 1;
                        return true;
                    }
                    // Split at the first differing bit between positions.
                    let diverge = (leaf_pos ^ position).leading_zeros();
                    self.splice(cur, &path, position, value, key, diverge);
                    return true;
                }
            }
        }
    }

    /// First bit `< limit` where `position` leaves the prefix shared by
    /// subtree `node` — detected by comparing against any position in the
    /// subtree (all share the prefix above the node's split bit).
    fn diverge_bit(&self, node: NodeId, position: u64, limit: u32) -> Option<u32> {
        let sample = self.sample_position(node);
        let diff = sample ^ position;
        if diff == 0 {
            return None;
        }
        let bit = diff.leading_zeros();
        if bit < limit {
            Some(bit)
        } else {
            None
        }
    }

    /// Any position stored beneath `node` (leftmost descent).
    fn sample_position(&self, mut node: NodeId) -> u64 {
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf { position, .. } => return *position,
                Node::Internal { left, .. } => node = *left,
            }
        }
    }

    /// Splices a new internal node above `at`, separating the existing
    /// subtree from a fresh leaf for `key` at bit `diverge`, then updates
    /// values up `path`.
    fn splice(
        &mut self,
        at: NodeId,
        path: &[NodeId],
        position: u64,
        value: u64,
        key: u64,
        diverge: u32,
    ) {
        let leaf = self.push(Node::Leaf {
            value,
            position,
            keys: vec![key],
        });
        // Move the existing node out to a new slot; `at` becomes the new
        // internal node so parent links stay valid.
        let old = self.nodes[at as usize].clone();
        let old_value = old.value();
        let moved = self.push(old);
        let new_bit_set = position & (1u64 << (63 - diverge)) != 0;
        let (left, right) = if new_bit_set { (moved, leaf) } else { (leaf, moved) };
        self.nodes[at as usize] = Node::Internal {
            value: old_value ^ value,
            bit: diverge,
            left,
            right,
        };
        for &id in path {
            self.xor_value(id, value);
        }
        self.len += 1;
    }

    fn xor_value(&mut self, id: NodeId, delta: u64) {
        match &mut self.nodes[id as usize] {
            Node::Leaf { value, .. } | Node::Internal { value, .. } => *value ^= delta,
        }
    }

    /// Number of distinct keys in the tree.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The parameters this tree was built with.
    #[must_use]
    pub fn params(&self) -> ArtParams {
        self.params
    }

    /// Root value — equal for two trees iff they hold identical sets
    /// (up to the negligible XOR-collision probability). This is the O(1)
    /// "are we identical?" test.
    #[must_use]
    pub fn root_value(&self) -> Option<u64> {
        self.root.map(|r| self.nodes[r as usize].value())
    }

    pub(crate) fn root(&self) -> Option<NodeId> {
        self.root
    }

    pub(crate) fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Total number of arena nodes (internal + leaves); includes nodes
    /// orphaned by splices, so this is a capacity metric, not a tree
    /// invariant.
    #[must_use]
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Visits every live node value, distinguishing internal from leaf —
    /// the input to summary construction.
    pub(crate) fn visit_values<F: FnMut(u64, bool)>(&self, mut f: F) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id as usize] {
                Node::Leaf { value, .. } => f(*value, true),
                Node::Internal { value, left, right, .. } => {
                    f(*value, false);
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
    }

    /// Maximum root-to-leaf depth (collapsed) — O(log n) w.h.p.; exposed
    /// for tests and the speed analysis.
    #[must_use]
    pub fn depth(&self) -> usize {
        fn depth_of(tree: &ReconciliationTree, id: NodeId) -> usize {
            match tree.node(id) {
                Node::Leaf { .. } => 1,
                Node::Internal { left, right, .. } => {
                    1 + depth_of(tree, *left).max(depth_of(tree, *right))
                }
            }
        }
        self.root.map_or(0, |r| depth_of(self, r))
    }

    /// Counts live (reachable) nodes: `(internal, leaves)`.
    #[must_use]
    pub fn live_nodes(&self) -> (usize, usize) {
        let mut internal = 0;
        let mut leaves = 0;
        self.visit_values(|_, is_leaf| {
            if is_leaf {
                leaves += 1;
            } else {
                internal += 1;
            }
        });
        (internal, leaves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn empty_tree() {
        let t = ReconciliationTree::new(ArtParams::default());
        assert!(t.is_empty());
        assert_eq!(t.root_value(), None);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn single_key() {
        let params = ArtParams::default();
        let t = ReconciliationTree::from_keys(params, [42u64]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.root_value(), Some(params.value(42)));
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn root_value_is_xor_of_element_values() {
        let params = ArtParams::default();
        let ks = keys(500, 1);
        let t = ReconciliationTree::from_keys(params, ks.iter().copied());
        let expect = ks.iter().fold(0u64, |acc, &k| acc ^ params.value(k));
        assert_eq!(t.root_value(), Some(expect));
    }

    #[test]
    fn identical_sets_identical_roots() {
        let params = ArtParams::default();
        let ks = keys(300, 2);
        let a = ReconciliationTree::from_keys(params, ks.iter().copied());
        let mut shuffled = ks.clone();
        Xoshiro256StarStar::new(9).shuffle(&mut shuffled);
        let b = ReconciliationTree::from_keys(params, shuffled);
        assert_eq!(a.root_value(), b.root_value());
    }

    #[test]
    fn different_sets_different_roots() {
        let params = ArtParams::default();
        let ks = keys(300, 3);
        let a = ReconciliationTree::from_keys(params, ks.iter().copied());
        let b = ReconciliationTree::from_keys(params, ks[..299].iter().copied());
        assert_ne!(a.root_value(), b.root_value());
    }

    #[test]
    fn duplicates_ignored_in_batch() {
        let params = ArtParams::default();
        let mut ks = keys(100, 4);
        ks.extend(keys(100, 4)); // same again
        let t = ReconciliationTree::from_keys(params, ks);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn incremental_matches_batch() {
        let params = ArtParams::default();
        let ks = keys(1000, 5);
        let batch = ReconciliationTree::from_keys(params, ks.iter().copied());
        let mut inc = ReconciliationTree::new(params);
        for &k in &ks {
            assert!(inc.insert(k));
        }
        assert_eq!(inc.len(), batch.len());
        assert_eq!(inc.root_value(), batch.root_value());
        // The full multiset of (value, is_leaf) node labels must agree —
        // the summaries depend on exactly this.
        let collect = |t: &ReconciliationTree| {
            let mut v: Vec<(u64, bool)> = Vec::new();
            t.visit_values(|val, leaf| v.push((val, leaf)));
            v.sort_unstable();
            v
        };
        assert_eq!(collect(&inc), collect(&batch));
    }

    #[test]
    fn incremental_duplicate_rejected() {
        let params = ArtParams::default();
        let mut t = ReconciliationTree::new(params);
        assert!(t.insert(7));
        assert!(!t.insert(7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn interleaved_insert_preserves_equivalence() {
        // Insert in two different interleavings; trees must agree.
        let params = ArtParams::default();
        let ks = keys(200, 6);
        let mut a = ReconciliationTree::new(params);
        let mut b = ReconciliationTree::new(params);
        for &k in &ks {
            a.insert(k);
        }
        for &k in ks.iter().rev() {
            b.insert(k);
        }
        assert_eq!(a.root_value(), b.root_value());
    }

    #[test]
    fn depth_is_logarithmic() {
        let params = ArtParams::default();
        for n in [100usize, 1000, 10_000] {
            let t = ReconciliationTree::from_keys(params, keys(n, 7));
            let bound = 4 * (n as f64).log2().ceil() as usize + 8;
            assert!(
                t.depth() <= bound,
                "depth {} exceeds O(log n) bound {bound} at n={n}",
                t.depth()
            );
        }
    }

    #[test]
    fn live_node_counts() {
        let params = ArtParams::default();
        let n = 1000;
        let t = ReconciliationTree::from_keys(params, keys(n, 8));
        let (internal, leaves) = t.live_nodes();
        assert_eq!(leaves, n, "one leaf per key (64-bit positions)");
        assert_eq!(internal, n - 1, "binary tree with n leaves");
    }

    #[test]
    fn subset_relation_visible_in_values() {
        // Removing one key changes the root by exactly that key's value.
        let params = ArtParams::default();
        let ks = keys(50, 10);
        let full = ReconciliationTree::from_keys(params, ks.iter().copied());
        let partial = ReconciliationTree::from_keys(params, ks[1..].iter().copied());
        assert_eq!(
            full.root_value().unwrap() ^ partial.root_value().unwrap(),
            params.value(ks[0])
        );
    }
}
