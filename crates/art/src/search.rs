//! Difference search: peer B walks its own tree against peer A's summary.
//!
//! At each internal node of B's tree the search probes A's internal
//! filter with the node's value:
//!
//! * **match** — A probably has an identical subtree. One more entry in
//!   the run of consecutive matches; once the run exceeds the correction
//!   level the subtree is pruned ("correction level of 0 stops the search
//!   at the first match found while a correction level of 1 allows one
//!   match at an internal node but stops if a child of that node also
//!   matches", §5.3).
//! * **mismatch** — definite difference below; the run resets to zero and
//!   the search descends.
//!
//! At a leaf, A's leaf filter gets the final word: a miss means A
//! provably lacks this leaf's content (Bloom filters have no false
//! negatives), so the leaf's keys are reported as elements of S_B − S_A.
//! A false positive at a leaf or an over-long match run in the interior
//! silently *hides* differences — which is exactly the accuracy loss
//! Figure 4 and Table 4(b) of the paper quantify, and what the
//! `fig4a`/`table4b` harnesses reproduce.

use crate::summary::ArtSummary;
use crate::tree::{Node, ReconciliationTree};

/// Result of a difference search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Keys of `own_tree` that the summary proves absent from the peer —
    /// a subset of the true difference (never a superset, up to 64-bit
    /// hash collisions).
    pub missing_at_peer: Vec<u64>,
    /// Internal-node filter probes performed (speed metric).
    pub internal_probes: usize,
    /// Leaf filter probes performed.
    pub leaf_probes: usize,
    /// Nodes visited in total — the paper's O(d log n) claim is about
    /// this number.
    pub nodes_visited: usize,
}

impl SearchOutcome {
    /// Total filter probes.
    #[must_use]
    pub fn total_probes(&self) -> usize {
        self.internal_probes + self.leaf_probes
    }
}

/// Searches `own_tree` (peer B's tree) against `peer_summary` (built from
/// peer A's tree) and reports elements of B's set that A provably lacks.
///
/// The correction level is taken from the summary, which advertises how
/// it was sized. An explicit stack keeps the walk iterative — tree depth
/// is O(log n) w.h.p. but untrusted input must not overflow the call
/// stack.
#[must_use]
pub fn search_differences(
    own_tree: &ReconciliationTree,
    peer_summary: &ArtSummary,
) -> SearchOutcome {
    search_differences_with_correction(own_tree, peer_summary, peer_summary.correction())
}

/// [`search_differences`] with an explicit correction level (used by the
/// accuracy experiments to sweep corrections over one summary).
#[must_use]
pub fn search_differences_with_correction(
    own_tree: &ReconciliationTree,
    peer_summary: &ArtSummary,
    correction: u32,
) -> SearchOutcome {
    let mut outcome = SearchOutcome::default();
    let Some(root) = own_tree.root() else {
        return outcome;
    };
    // (node, consecutive internal matches on the path so far)
    let mut stack: Vec<(u32, u32)> = vec![(root, 0)];
    while let Some((id, run)) = stack.pop() {
        outcome.nodes_visited += 1;
        match own_tree.node(id) {
            Node::Leaf { value, keys, .. } => {
                outcome.leaf_probes += 1;
                if !peer_summary.matches_leaf(*value) {
                    outcome.missing_at_peer.extend_from_slice(keys);
                }
            }
            Node::Internal { value, left, right, .. } => {
                outcome.internal_probes += 1;
                let run = if peer_summary.matches_internal(*value) {
                    // A run longer than the correction level prunes.
                    if run >= correction {
                        continue;
                    }
                    run + 1
                } else {
                    0
                };
                stack.push((*left, run));
                stack.push((*right, run));
            }
        }
    }
    outcome.missing_at_peer.sort_unstable();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryParams;
    use crate::tree::ArtParams;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};
    use std::collections::HashSet;

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    /// Builds peer sets: `shared` common keys, plus `b_extra` keys only B
    /// has. Returns (a_keys, b_keys, true_difference).
    fn scenario(shared: usize, b_extra: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let common = keys(shared, seed);
        let extra = keys(b_extra, seed ^ 0xDEAD_BEEF);
        let a = common.clone();
        let mut b = common;
        b.extend(extra.iter().copied());
        (a, b, extra)
    }

    #[test]
    fn identical_sets_report_nothing() {
        let params = ArtParams::default();
        let ks = keys(1000, 1);
        let a = ReconciliationTree::from_keys(params, ks.iter().copied());
        let b = ReconciliationTree::from_keys(params, ks.iter().copied());
        let summary = ArtSummary::build(&a, SummaryParams::standard());
        let out = search_differences(&b, &summary);
        assert!(out.missing_at_peer.is_empty());
        // Root matches immediately; at correction 5 the search still
        // prunes long before visiting everything.
        assert!(out.nodes_visited < 2 * b.len());
    }

    #[test]
    fn reported_differences_are_true_differences() {
        // The one-sided-error invariant, inherited from Bloom filters.
        let (a_keys, b_keys, _) = scenario(2000, 100, 2);
        let params = ArtParams::default();
        let a = ReconciliationTree::from_keys(params, a_keys.iter().copied());
        let b = ReconciliationTree::from_keys(params, b_keys.iter().copied());
        let summary = ArtSummary::build(&a, SummaryParams::with_split(8.0, 4.0, 5));
        let out = search_differences(&b, &summary);
        let a_set: HashSet<u64> = a_keys.into_iter().collect();
        for k in &out.missing_at_peer {
            assert!(!a_set.contains(k), "reported {k} is actually present at A");
        }
        assert!(!out.missing_at_peer.is_empty(), "should find some differences");
    }

    #[test]
    fn higher_correction_finds_more() {
        let (a_keys, b_keys, truth) = scenario(5000, 250, 3);
        let params = ArtParams::default();
        let a = ReconciliationTree::from_keys(params, a_keys.iter().copied());
        let b = ReconciliationTree::from_keys(params, b_keys.iter().copied());
        // Skinny internal filter → many interior false positives →
        // correction matters (this is Figure 4(a)'s mechanism).
        let summary = ArtSummary::build(&a, SummaryParams::with_split(4.0, 2.0, 5));
        let mut found = Vec::new();
        for corr in 0..=5 {
            let out = search_differences_with_correction(&b, &summary, corr);
            found.push(out.missing_at_peer.len());
        }
        assert!(
            found.windows(2).all(|w| w[0] <= w[1]),
            "accuracy must be monotone in correction: {found:?}"
        );
        assert!(
            found[5] > found[0],
            "correction should recover pruned differences: {found:?}"
        );
        assert!(found[5] <= truth.len());
    }

    #[test]
    fn generous_budget_finds_nearly_all() {
        let (a_keys, b_keys, truth) = scenario(2000, 100, 4);
        let params = ArtParams::default();
        let a = ReconciliationTree::from_keys(params, a_keys.iter().copied());
        let b = ReconciliationTree::from_keys(params, b_keys.iter().copied());
        let summary = ArtSummary::build(&a, SummaryParams::with_split(16.0, 8.0, 5));
        let out = search_differences(&b, &summary);
        let frac = out.missing_at_peer.len() as f64 / truth.len() as f64;
        assert!(frac > 0.9, "found only {frac} of differences");
    }

    #[test]
    fn search_cost_scales_with_difference_not_set_size() {
        // The paper's speed claim: O(d log n) nodes visited, against the
        // O(n) probes of plain Bloom reconciliation. Correction multiplies
        // the constant by up to 2^c (each boundary node explores a
        // matching sibling subtree for c more levels), so measure at a
        // low correction with a roomy filter.
        let params = ArtParams::default();
        let d = 20usize;
        let (a_keys, b_keys, _) = scenario(20_000, d, 5);
        let a = ReconciliationTree::from_keys(params, a_keys.iter().copied());
        let b = ReconciliationTree::from_keys(params, b_keys.iter().copied());
        let summary = ArtSummary::build(&a, SummaryParams::with_split(16.0, 8.0, 1));
        let out = search_differences(&b, &summary);
        let depth = b.depth();
        let analytic_bound = d * depth * 4; // d paths × depth × 2^(c+1)
        assert!(
            out.nodes_visited <= analytic_bound,
            "visited {} nodes, analytic bound {analytic_bound}",
            out.nodes_visited
        );
        assert!(
            out.nodes_visited < b_keys.len() / 4,
            "visited {} of ~{} nodes — not sublinear",
            out.nodes_visited,
            2 * b_keys.len()
        );
    }

    #[test]
    fn correction_trades_visits_for_accuracy() {
        // Visits grow with correction level; found differences too.
        let params = ArtParams::default();
        let (a_keys, b_keys, _) = scenario(10_000, 50, 9);
        let a = ReconciliationTree::from_keys(params, a_keys.iter().copied());
        let b = ReconciliationTree::from_keys(params, b_keys.iter().copied());
        let summary = ArtSummary::build(&a, SummaryParams::with_split(8.0, 4.0, 5));
        let visits: Vec<usize> = (0..=5)
            .map(|c| search_differences_with_correction(&b, &summary, c).nodes_visited)
            .collect();
        assert!(
            visits.windows(2).all(|w| w[0] <= w[1]),
            "visits must be monotone in correction: {visits:?}"
        );
        assert!(visits[5] > visits[0]);
    }

    #[test]
    fn empty_own_tree_reports_nothing() {
        let params = ArtParams::default();
        let a = ReconciliationTree::from_keys(params, keys(100, 6));
        let b = ReconciliationTree::new(params);
        let summary = ArtSummary::build(&a, SummaryParams::standard());
        let out = search_differences(&b, &summary);
        assert!(out.missing_at_peer.is_empty());
        assert_eq!(out.nodes_visited, 0);
    }

    #[test]
    fn empty_peer_everything_is_missing() {
        let params = ArtParams::default();
        let ks = keys(500, 7);
        let a = ReconciliationTree::new(params);
        let b = ReconciliationTree::from_keys(params, ks.iter().copied());
        let summary = ArtSummary::build(&a, SummaryParams::standard());
        let out = search_differences(&b, &summary);
        let mut expect = ks;
        expect.sort_unstable();
        assert_eq!(out.missing_at_peer, expect);
    }

    #[test]
    fn incremental_tree_searches_identically() {
        let (a_keys, b_keys, _) = scenario(1000, 50, 8);
        let params = ArtParams::default();
        let a = ReconciliationTree::from_keys(params, a_keys.iter().copied());
        let batch = ReconciliationTree::from_keys(params, b_keys.iter().copied());
        let mut inc = ReconciliationTree::new(params);
        for &k in &b_keys {
            inc.insert(k);
        }
        let summary = ArtSummary::build(&a, SummaryParams::standard());
        assert_eq!(
            search_differences(&batch, &summary).missing_at_peer,
            search_differences(&inc, &summary).missing_at_peer
        );
    }
}
