//! The ART mechanism's plug into the workspace-wide summary API.
//!
//! [`ArtDigest`] pairs an [`ArtSummary`] with the protocol [`ArtParams`]
//! and implements the `icd-summary` traits. Receiver side it encodes the
//! two Bloom filters plus geometry; sender side the decoded digest
//! rebuilds a reconciliation tree over the caller's keys and runs the
//! §5.3 difference search — O(d log n) probes when the difference is
//! small, the regime the mechanism is designed for.

use icd_bloom::digest::{decode_filter, encode_filter};
use icd_summary::{
    FrameReader, FrameWriter, Reconciler, SetSummary, SummaryError, SummaryId, SummaryRegistry,
    SummarySizing, SummarySpec,
};

use crate::search::search_differences;
use crate::summary::{ArtSummary, SummaryParams};
use crate::tree::{ArtParams, ReconciliationTree};

/// A transmissible ART summary speaking the summary traits.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtDigest {
    summary: ArtSummary,
    params: ArtParams,
}

impl ArtDigest {
    /// Builds the digest of `keys` under `summary_params`, using the
    /// protocol-default tree parameters.
    #[must_use]
    pub fn build(keys: &[u64], summary_params: SummaryParams) -> Self {
        let tree = ReconciliationTree::from_keys(ArtParams::default(), keys.iter().copied());
        Self::from_summary(ArtSummary::build(&tree, summary_params))
    }

    /// Wraps an existing summary (protocol-default tree parameters).
    #[must_use]
    pub fn from_summary(summary: ArtSummary) -> Self {
        Self {
            summary,
            params: ArtParams::default(),
        }
    }

    /// The wrapped summary.
    #[must_use]
    pub fn summary(&self) -> &ArtSummary {
        &self.summary
    }

    /// Decodes a digest from its wire body.
    pub fn decode(body: &[u8]) -> Result<Self, SummaryError> {
        let mut r = FrameReader::new(body);
        let correction = u32::from(r.u16()?);
        let elements = r.u64()?;
        if elements > icd_summary::codec::MAX_VEC {
            return Err(SummaryError::Malformed("art element count out of range"));
        }
        let leaf = decode_filter(&mut r)?;
        let internal = decode_filter(&mut r)?;
        r.finish()?;
        Ok(Self::from_summary(ArtSummary::from_parts(
            leaf,
            internal,
            correction,
            elements as usize,
        )))
    }
}

impl Reconciler for ArtDigest {
    fn id(&self) -> SummaryId {
        SummaryId::ART
    }

    fn missing_at_peer(&self, local: &[u64]) -> Vec<u64> {
        let tree = ReconciliationTree::from_keys(self.params, local.iter().copied());
        let mut out = search_differences(&tree, &self.summary).missing_at_peer;
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl SetSummary for ArtDigest {
    fn encode_body(&self) -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.u16(u16::try_from(self.summary.correction().min(u32::from(u16::MAX))).expect("bounded"));
        w.u64(self.summary.elements() as u64);
        encode_filter(&mut w, self.summary.leaf_filter());
        encode_filter(&mut w, self.summary.internal_filter());
        w.finish()
    }

    /// Probes the leaf filter with the key's node value. Exact when the
    /// key occupies its own leaf (w.h.p. in the 64-bit position space);
    /// a leaf shared through a position collision may answer `false` for
    /// a key the set does hold, which the difference search — the
    /// authoritative path — handles via the collapsed tree instead.
    fn probably_contains(&self, key: u64) -> bool {
        self.summary.matches_leaf(self.params.value(key))
    }
}

/// Per-digest fixed header bytes (correction, element count, and two
/// embedded filter headers).
const BODY_HEADER_BYTES: f64 = 68.0;

/// The ART mechanism's registry entry.
#[must_use]
pub fn spec() -> SummarySpec {
    SummarySpec {
        id: SummaryId::ART,
        label: "art",
        build: |sizing, _est, keys| {
            Box::new(ArtDigest::build(keys, summary_params(sizing)))
        },
        decode: |body| Ok(Box::new(ArtDigest::decode(body)?)),
        wire_cost: |sizing, est| {
            let bpe = sizing.art_leaf_bits_per_element + sizing.art_internal_bits_per_element;
            (bpe * est.summarized.max(1) as f64 / 8.0).ceil() + BODY_HEADER_BYTES
        },
        compute_cost: |sizing, est| {
            // §5.3's search cost: O(d log n) node visits, and the
            // correction level tolerates up to c consecutive matches
            // before pruning — up to 1 + c probed nodes per level of
            // each difference path.
            let log_n = (est.searched.max(2) as f64).log2();
            f64::from(1 + sizing.art_correction) * est.expected_new.max(1) as f64 * log_n
        },
        expected_recall: |_sizing, _est| {
            // The correction mechanism recovers most of the accuracy the
            // halved bit budget gives up; Figure 4 / Table 4(b) put the
            // standard configuration in this band.
            0.75
        },
    }
}

/// Maps the shared sizing knobs onto ART summary parameters.
#[must_use]
pub fn summary_params(sizing: &SummarySizing) -> SummaryParams {
    SummaryParams {
        leaf_bits_per_element: sizing.art_leaf_bits_per_element,
        internal_bits_per_element: sizing.art_internal_bits_per_element,
        correction: sizing.art_correction,
        ..SummaryParams::standard()
    }
}

/// Registers the ART mechanism into `registry`.
pub fn register(registry: &mut SummaryRegistry) -> Result<(), SummaryError> {
    registry.register(spec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn digest_roundtrips_and_searches() {
        let shared = keys(2000, 1);
        let digest = ArtDigest::build(&shared, SummaryParams::standard());
        let body = digest.encode_body();
        let back = ArtDigest::decode(&body).expect("decode");
        assert_eq!(back, digest);
        let fresh = keys(60, 2);
        let mut local = shared.clone();
        local.extend(fresh.iter().copied());
        let missing = back.missing_at_peer(&local);
        assert!(!missing.is_empty(), "small difference must be found");
        for id in &missing {
            assert!(fresh.contains(id), "one-sided error violated for {id}");
        }
        assert!(missing.windows(2).all(|w| w[0] < w[1]), "sorted output");
    }

    #[test]
    fn membership_probe_has_no_false_negatives_whp() {
        let a = keys(1000, 3);
        let digest = ArtDigest::build(&a, SummaryParams::standard());
        for &k in &a {
            assert!(digest.probably_contains(k));
        }
    }

    #[test]
    fn truncated_bodies_rejected() {
        let digest = ArtDigest::build(&keys(100, 4), SummaryParams::standard());
        let body = digest.encode_body();
        for cut in 0..body.len() {
            assert!(ArtDigest::decode(&body[..cut]).is_err(), "cut {cut}");
        }
    }
}
