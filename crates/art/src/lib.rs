//! Approximate reconciliation trees (§5.3) — the paper's new data
//! structure for finding a peer's missing symbols when the set difference
//! is small.
//!
//! The construction, following the paper:
//!
//! 1. Every element is hashed to a **position** (tree balancing /
//!    randomization) and, independently, to a **value** in [1, h)
//!    (breaking spatial correlation so sibling subtrees get unrelated
//!    hashes).
//! 2. Conceptually, a binary tree over the position space: each node
//!    covers a dyadic interval, the root covers everything. A node's
//!    value is the XOR of the values of all elements in its interval —
//!    order- and structure-independent, so two peers whose subtrees hold
//!    the same elements compute the same node value.
//! 3. The tree is collapsed PATRICIA-style (trivial single-child chains
//!    removed), leaving O(n) nodes and O(log n) depth w.h.p.
//! 4. Instead of shipping the tree, the node values are summarized in two
//!    Bloom filters — one for internal nodes, one for leaves — whose
//!    relative sizing is tunable (Figure 4(a) of the paper explores the
//!    tradeoff).
//!
//! Peer B then searches **its own** tree: any node whose value appears in
//!   A's filter probably has an identical counterpart at A, so the search
//! prunes there (subject to a *correction level*: up to `c` consecutive
//! matches may be tolerated before pruning, recovering accuracy lost to
//! Bloom false positives). Leaves that reach the leaf filter and miss are
//! reported as differences.
//!
//! Divergence from the paper, documented in DESIGN.md: positions use the
//! full 64-bit hash space rather than M = |S|²; this is still poly(n) for
//! every practical n, keeps collapsed depth O(log n), and drives the
//! probability of position collisions to ~n²/2⁶⁴ (so the "reported
//! differences are true differences" guarantee is exact in practice).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod digest;
pub mod search;
pub mod summary;
pub mod tree;

pub use digest::ArtDigest;
pub use search::{search_differences, SearchOutcome};
pub use summary::{ArtSummary, SummaryParams};
pub use tree::{ArtParams, ReconciliationTree};
