//! Bloom-filter summaries of reconciliation trees.
//!
//! "To avoid some bulkiness in sending an explicit representation of the
//! tree, we instead summarize the hashes of the tree in a Bloom filter ...
//! we separate the leaf hashes from the internal hashes and use separate
//! Bloom filters, thus allowing the relative accuracies to be controlled"
//! (§5.3). A summary therefore consists of two filters plus the geometry
//! needed for the peer to probe them.
//!
//! The bit budget is expressed the way the paper's Figure 4 does: a total
//! number of bits per element, split between the leaf filter and the
//! internal filter. A split of 0 bits disables one filter — modelled as a
//! 1-bit always-positive filter, which makes the accuracy collapse the
//! figure shows at the extremes emerge naturally rather than by special
//! case.

use icd_bloom::BloomFilter;

use crate::tree::ReconciliationTree;

/// Sizing for a tree summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryParams {
    /// Bits per element allocated to the leaf filter.
    pub leaf_bits_per_element: f64,
    /// Bits per element allocated to the internal-node filter.
    pub internal_bits_per_element: f64,
    /// Correction level: number of consecutive internal-node matches the
    /// search tolerates before pruning (§5.3; 0–5 in the paper's tables).
    pub correction: u32,
    /// Seed namespace for the two filters (protocol constant).
    pub seed: u64,
}

impl SummaryParams {
    /// The paper's headline configuration: 8 bits/element total with the
    /// empirically best split and correction level 5 (Table 4(c)).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            leaf_bits_per_element: 5.0,
            internal_bits_per_element: 3.0,
            correction: 5,
            seed: 0x4152_545F_424C_4F4F, // "ART_BLOO"
        }
    }

    /// A split of a fixed total budget: `leaf` bits/element to leaves and
    /// `total − leaf` to internal nodes (Figure 4(a)'s x-axis).
    #[must_use]
    pub fn with_split(total_bits_per_element: f64, leaf_bits_per_element: f64, correction: u32) -> Self {
        assert!(
            leaf_bits_per_element <= total_bits_per_element,
            "leaf bits exceed total budget"
        );
        Self {
            leaf_bits_per_element,
            internal_bits_per_element: total_bits_per_element - leaf_bits_per_element,
            correction,
            ..Self::standard()
        }
    }

    /// Total bits per element.
    #[must_use]
    pub fn total_bits_per_element(&self) -> f64 {
        self.leaf_bits_per_element + self.internal_bits_per_element
    }
}

/// The transmissible summary of a peer's reconciliation tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtSummary {
    leaf_filter: BloomFilter,
    internal_filter: BloomFilter,
    correction: u32,
    elements: usize,
}

impl ArtSummary {
    /// Builds the summary of `tree` under `params`.
    ///
    /// Both filters are sized by the number of *elements* (n), matching
    /// the paper's bits-per-element accounting: the internal filter holds
    /// ≈ n−1 values, the leaf filter ≈ n.
    #[must_use]
    pub fn build(tree: &ReconciliationTree, params: SummaryParams) -> Self {
        let n = tree.len().max(1);
        let mut leaf_filter = sized_filter(n, params.leaf_bits_per_element, params.seed ^ 0x1EAF);
        let mut internal_filter =
            sized_filter(n, params.internal_bits_per_element, params.seed ^ 0x1A7E);
        tree.visit_values(|value, is_leaf| {
            if is_leaf {
                leaf_filter.insert(value);
            } else {
                internal_filter.insert(value);
            }
        });
        Self {
            leaf_filter,
            internal_filter,
            correction: params.correction,
            elements: tree.len(),
        }
    }

    /// Probes the internal-node filter.
    #[inline]
    #[must_use]
    pub fn matches_internal(&self, value: u64) -> bool {
        self.internal_filter.contains(value)
    }

    /// Probes the leaf filter.
    #[inline]
    #[must_use]
    pub fn matches_leaf(&self, value: u64) -> bool {
        self.leaf_filter.contains(value)
    }

    /// Correction level the sender advertises for searching against this
    /// summary.
    #[must_use]
    pub fn correction(&self) -> u32 {
        self.correction
    }

    /// Number of elements in the summarized set.
    #[must_use]
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Wire size in bytes: both filter bodies (geometry rides in the
    /// message header, counted by `icd-wire`).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.leaf_filter.wire_size() + self.internal_filter.wire_size()
    }

    /// Access to the leaf filter (wire encoding).
    #[must_use]
    pub fn leaf_filter(&self) -> &BloomFilter {
        &self.leaf_filter
    }

    /// Access to the internal filter (wire encoding).
    #[must_use]
    pub fn internal_filter(&self) -> &BloomFilter {
        &self.internal_filter
    }

    /// Reassembles a summary from its parts (wire decoding).
    #[must_use]
    pub fn from_parts(
        leaf_filter: BloomFilter,
        internal_filter: BloomFilter,
        correction: u32,
        elements: usize,
    ) -> Self {
        Self {
            leaf_filter,
            internal_filter,
            correction,
            elements,
        }
    }
}

/// Builds a filter of `n × bits_per_element` bits; a zero (or tiny)
/// budget degenerates to a 1-bit filter, which after any insertion
/// answers every probe positively — the correct "no evidence" semantics
/// for a disabled filter.
fn sized_filter(n: usize, bits_per_element: f64, seed: u64) -> BloomFilter {
    if bits_per_element < 1e-9 {
        BloomFilter::new(1, 1, seed)
    } else {
        BloomFilter::with_bits_per_element(n, bits_per_element, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ArtParams;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn summary_contains_own_nodes() {
        let tree = ReconciliationTree::from_keys(ArtParams::default(), keys(500, 1));
        let summary = ArtSummary::build(&tree, SummaryParams::standard());
        // Every node value of the summarized tree must probe positive
        // (no false negatives).
        tree.visit_values(|value, is_leaf| {
            if is_leaf {
                assert!(summary.matches_leaf(value));
            } else {
                assert!(summary.matches_internal(value));
            }
        });
    }

    #[test]
    fn wire_size_tracks_budget() {
        let n = 10_000;
        let tree = ReconciliationTree::from_keys(ArtParams::default(), keys(n, 2));
        let summary = ArtSummary::build(&tree, SummaryParams::with_split(8.0, 4.0, 3));
        // 8 bits/element → n bytes total across the two filters.
        let expected = n; // 8 bits = 1 byte per element
        let got = summary.wire_size();
        assert!(
            (got as i64 - expected as i64).unsigned_abs() < 64,
            "wire size {got}, expected ≈ {expected}"
        );
        // §3: "a gigabyte of content will typically require a summary on
        // the order of 10KB" — 10k symbols at 8 bits/elem ≈ 10 KB.
        assert!(got <= 11 * 1024);
    }

    #[test]
    fn zero_leaf_budget_answers_everything() {
        let tree = ReconciliationTree::from_keys(ArtParams::default(), keys(100, 3));
        let summary = ArtSummary::build(&tree, SummaryParams::with_split(8.0, 0.0, 0));
        let mut rng = Xoshiro256StarStar::new(4);
        for _ in 0..100 {
            assert!(summary.matches_leaf(rng.next_u64()));
        }
    }

    #[test]
    #[should_panic(expected = "leaf bits exceed total budget")]
    fn split_overflow_rejected() {
        let _ = SummaryParams::with_split(8.0, 9.0, 0);
    }

    #[test]
    fn split_partitions_budget() {
        let p = SummaryParams::with_split(8.0, 3.0, 2);
        assert_eq!(p.leaf_bits_per_element, 3.0);
        assert_eq!(p.internal_bits_per_element, 5.0);
        assert_eq!(p.total_bits_per_element(), 8.0);
        assert_eq!(p.correction, 2);
    }

    #[test]
    fn foreign_values_mostly_rejected() {
        let tree = ReconciliationTree::from_keys(ArtParams::default(), keys(2000, 5));
        let summary = ArtSummary::build(&tree, SummaryParams::with_split(8.0, 4.0, 0));
        let mut rng = Xoshiro256StarStar::new(6);
        let leaf_fp = (0..10_000)
            .filter(|_| summary.matches_leaf(rng.next_u64()))
            .count() as f64
            / 10_000.0;
        let internal_fp = (0..10_000)
            .filter(|_| summary.matches_internal(rng.next_u64()))
            .count() as f64
            / 10_000.0;
        // 4 bits/element → FP ≈ 14.7 %.
        assert!(leaf_fp < 0.25, "leaf FP {leaf_fp}");
        assert!(internal_fp < 0.25, "internal FP {internal_fp}");
    }

    #[test]
    fn empty_tree_summarizes() {
        let tree = ReconciliationTree::new(ArtParams::default());
        let summary = ArtSummary::build(&tree, SummaryParams::standard());
        assert_eq!(summary.elements(), 0);
        // Nothing inserted → probes are negative.
        assert!(!summary.matches_leaf(123));
    }
}
