//! Accuracy measurement harness for Figure 4(a) and Tables 4(b,c).
//!
//! The paper reports "fraction of differences found" for an ART summary
//! under varying bit budgets, leaf/internal splits, and correction
//! levels. This module provides the repeatable experiment: generate two
//! working sets with a controlled difference, summarize one, search from
//! the other, and score. Both the test suite and the `fig4a`/`table4b`/
//! `table4c` harness binaries drive it.

use icd_util::rng::{Rng64, Xoshiro256StarStar};
use icd_util::stats::Summary;

use crate::search::search_differences_with_correction;
use crate::summary::{ArtSummary, SummaryParams};
use crate::tree::{ArtParams, ReconciliationTree};

/// Configuration of one accuracy experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyConfig {
    /// Elements in peer A's set (the summarized side).
    pub set_size: usize,
    /// Elements of B's set absent from A (the search target, "d").
    pub differences: usize,
    /// Total summary budget in bits per element.
    pub total_bits_per_element: f64,
    /// Leaf-filter share of the budget, in bits per element.
    pub leaf_bits_per_element: f64,
    /// Correction level used during search.
    pub correction: u32,
    /// Independent trials to average over.
    pub trials: usize,
    /// Base seed; trial t uses seed + t.
    pub seed: u64,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        Self {
            set_size: 10_000,
            differences: 200,
            total_bits_per_element: 8.0,
            leaf_bits_per_element: 4.0,
            correction: 1,
            trials: 5,
            seed: 0x41CC,
        }
    }
}

/// Runs the experiment and returns per-trial "fraction of the true
/// difference found" as a [`Summary`].
#[must_use]
pub fn measure_accuracy(cfg: &AccuracyConfig) -> Summary {
    let mut results = Summary::new();
    for trial in 0..cfg.trials {
        results.push(run_trial(cfg, cfg.seed.wrapping_add(trial as u64)));
    }
    results
}

/// One trial: builds A = shared set, B = shared ∪ d fresh keys, and
/// scores the search. Mirrors the compact-scenario geometry of §5.3
/// ("less than 1% of the symbols at peer B might be useful to peer A").
fn run_trial(cfg: &AccuracyConfig, seed: u64) -> f64 {
    let mut rng = Xoshiro256StarStar::new(seed);
    let shared: Vec<u64> = (0..cfg.set_size).map(|_| rng.next_u64()).collect();
    let fresh: Vec<u64> = (0..cfg.differences).map(|_| rng.next_u64()).collect();
    let params = ArtParams::default();
    let tree_a = ReconciliationTree::from_keys(params, shared.iter().copied());
    let mut b_keys = shared;
    b_keys.extend(fresh.iter().copied());
    let tree_b = ReconciliationTree::from_keys(params, b_keys);
    let summary_params = SummaryParams::with_split(
        cfg.total_bits_per_element,
        cfg.leaf_bits_per_element,
        cfg.correction,
    );
    let summary = ArtSummary::build(&tree_a, summary_params);
    let out = search_differences_with_correction(&tree_b, &summary, cfg.correction);
    if cfg.differences == 0 {
        return 1.0;
    }
    out.missing_at_peer.len() as f64 / cfg.differences as f64
}

/// Sweeps the leaf/internal split for a fixed total budget and correction
/// and returns `(leaf_bits, mean accuracy)` pairs — Figure 4(a)'s series.
#[must_use]
pub fn sweep_split(
    base: &AccuracyConfig,
    leaf_bits_grid: &[f64],
) -> Vec<(f64, f64)> {
    leaf_bits_grid
        .iter()
        .map(|&leaf_bits| {
            let cfg = AccuracyConfig {
                leaf_bits_per_element: leaf_bits,
                ..*base
            };
            (leaf_bits, measure_accuracy(&cfg).mean())
        })
        .collect()
}

/// Finds the best leaf/internal split for a budget and correction level
/// (the "optimal distribution of bits" used by Table 4(b)), searching a
/// half-bit grid. Returns `(leaf_bits, accuracy)`.
#[must_use]
pub fn optimal_split(base: &AccuracyConfig) -> (f64, f64) {
    let mut grid = Vec::new();
    let steps = (base.total_bits_per_element * 2.0) as usize;
    for i in 0..=steps {
        grid.push(i as f64 * 0.5);
    }
    sweep_split(base, &grid)
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("accuracy is finite"))
        .expect("non-empty grid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(set_size: usize, differences: usize) -> AccuracyConfig {
        AccuracyConfig {
            set_size,
            differences,
            trials: 3,
            ..AccuracyConfig::default()
        }
    }

    #[test]
    fn accuracy_in_unit_interval() {
        let s = measure_accuracy(&quick(2000, 50));
        assert!(s.min() >= 0.0 && s.max() <= 1.0);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn more_bits_more_accuracy() {
        let lo = measure_accuracy(&AccuracyConfig {
            total_bits_per_element: 2.0,
            leaf_bits_per_element: 1.0,
            correction: 2,
            ..quick(3000, 100)
        })
        .mean();
        let hi = measure_accuracy(&AccuracyConfig {
            total_bits_per_element: 12.0,
            leaf_bits_per_element: 6.0,
            correction: 2,
            ..quick(3000, 100)
        })
        .mean();
        assert!(hi > lo, "12 bpe ({hi}) should beat 2 bpe ({lo})");
    }

    #[test]
    fn correction_recovers_accuracy() {
        let base = quick(3000, 100);
        let c0 = measure_accuracy(&AccuracyConfig { correction: 0, ..base }).mean();
        let c5 = measure_accuracy(&AccuracyConfig { correction: 5, ..base }).mean();
        assert!(c5 >= c0, "correction 5 ({c5}) must not lose to 0 ({c0})");
    }

    #[test]
    fn extreme_splits_hurt() {
        // Figure 4(a): both all-leaf and no-leaf splits underperform an
        // interior split.
        let base = AccuracyConfig {
            correction: 3,
            ..quick(3000, 100)
        };
        let all_leaf = measure_accuracy(&AccuracyConfig {
            leaf_bits_per_element: base.total_bits_per_element,
            ..base
        })
        .mean();
        let no_leaf = measure_accuracy(&AccuracyConfig {
            leaf_bits_per_element: 0.0,
            ..base
        })
        .mean();
        let (best_split, best) = optimal_split(&base);
        assert!(best >= all_leaf && best >= no_leaf);
        assert!(best_split > 0.0 && best_split < base.total_bits_per_element);
    }

    #[test]
    fn zero_differences_is_full_accuracy() {
        let s = measure_accuracy(&quick(1000, 0));
        assert_eq!(s.mean(), 1.0);
    }
}
