//! The trivial exact baseline: ship the whole key set (§5.1).
//!
//! "Peer A can obviously send the entire set S_A, but this requires
//! O(|S_A| log u) bits to be transmitted." Zero error, maximal cost —
//! the yardstick the cost table measures everything else against.

use std::collections::HashSet;

/// Peer A's message: its complete key set (sorted for determinism).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WholeSetMessage {
    keys: Vec<u64>,
}

impl WholeSetMessage {
    /// Builds the message.
    #[must_use]
    pub fn build(keys: &[u64]) -> Self {
        let mut keys = keys.to_vec();
        keys.sort_unstable();
        keys.dedup();
        Self { keys }
    }

    /// Number of keys advertised.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Wire size: 8 bytes per key (`|S_A| log u` bits with u = 2^64).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.keys.len() * 8
    }

    /// The keys (sorted).
    #[must_use]
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Computes S_B ∖ S_A exactly.
    #[must_use]
    pub fn missing_at_sender(&self, b_keys: &[u64]) -> Vec<u64> {
        let a: HashSet<u64> = self.keys.iter().copied().collect();
        let mut out: Vec<u64> = b_keys.iter().copied().filter(|k| !a.contains(k)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_difference() {
        let msg = WholeSetMessage::build(&[1, 2, 3, 4]);
        let diff = msg.missing_at_sender(&[3, 4, 5, 6]);
        assert_eq!(diff, vec![5, 6]);
    }

    #[test]
    fn dedup_and_sort() {
        let msg = WholeSetMessage::build(&[5, 1, 5, 3]);
        assert_eq!(msg.keys(), &[1, 3, 5]);
        assert_eq!(msg.wire_size(), 24);
    }

    #[test]
    fn duplicate_b_keys_reported_once() {
        let msg = WholeSetMessage::build(&[1]);
        assert_eq!(msg.missing_at_sender(&[2, 2, 1]), vec![2]);
    }

    #[test]
    fn empty_cases() {
        let empty = WholeSetMessage::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.missing_at_sender(&[7]), vec![7]);
        let msg = WholeSetMessage::build(&[7]);
        assert!(msg.missing_at_sender(&[]).is_empty());
    }
}
