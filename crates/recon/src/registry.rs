//! The standard summary registry: every mechanism the workspace ships.
//!
//! `icd-recon` is the lowest crate that can see all five mechanisms
//! (it already depends on `icd-bloom` and `icd-art` for the cost
//! harness), so the assembled registry lives here; `icd-core::summary`
//! re-exports it as the protocol default. Deployments that want a
//! different mechanism set build their own [`SummaryRegistry`] from the
//! individual `spec()` functions.

use std::sync::OnceLock;

use icd_summary::SummaryRegistry;

use crate::digest::{char_poly_spec, hash_set_spec, whole_set_spec};

/// Builds a registry holding all five standard mechanisms: whole-set,
/// hash-set, char-poly, bloom, and art.
#[must_use]
pub fn standard_registry() -> SummaryRegistry {
    let mut reg = SummaryRegistry::new();
    for spec in [
        whole_set_spec(),
        hash_set_spec(),
        char_poly_spec(),
        icd_bloom::digest::spec(),
        icd_art::digest::spec(),
    ] {
        reg.register(spec).expect("standard ids are distinct");
    }
    reg
}

/// A process-wide shared instance of [`standard_registry`].
#[must_use]
pub fn shared_registry() -> &'static SummaryRegistry {
    static SHARED: OnceLock<SummaryRegistry> = OnceLock::new();
    SHARED.get_or_init(standard_registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_summary::SummaryId;

    #[test]
    fn standard_registry_holds_all_five() {
        let reg = standard_registry();
        assert_eq!(
            reg.ids(),
            vec![
                SummaryId::WHOLE_SET,
                SummaryId::HASH_SET,
                SummaryId::CHAR_POLY,
                SummaryId::BLOOM,
                SummaryId::ART,
            ]
        );
        for spec in reg.iter() {
            assert_eq!(spec.label, spec.id.label(), "labels agree with ids");
        }
    }

    #[test]
    fn shared_registry_is_stable() {
        let a = shared_registry();
        let b = shared_registry();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.len(), 5);
    }
}
