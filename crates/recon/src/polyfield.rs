//! Dense univariate polynomial arithmetic over GF(2^61 − 1).
//!
//! Just enough machinery for characteristic-polynomial set
//! reconciliation: multiplication, division with remainder, GCD,
//! evaluation, modular exponentiation of (z + r), and root extraction by
//! equal-degree splitting. Degrees stay small (the discrepancy bound, a
//! few hundred at most), so quadratic algorithms are the right tool — no
//! FFTs, no karatsuba, nothing to get wrong.

use icd_util::modp::{add, inv, mul, neg, sub, P};
use icd_util::rng::{Rng64, Xoshiro256StarStar};

/// A polynomial over GF(p), little-endian coefficients, no trailing
/// zeros (the zero polynomial is an empty vector).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
}

impl Poly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    #[must_use]
    pub fn constant(c: u64) -> Self {
        debug_assert!(c < P);
        if c == 0 {
            Self::zero()
        } else {
            Self { coeffs: vec![c] }
        }
    }

    /// Builds from little-endian coefficients, trimming trailing zeros.
    #[must_use]
    pub fn from_coeffs(mut coeffs: Vec<u64>) -> Self {
        debug_assert!(coeffs.iter().all(|&c| c < P));
        while coeffs.last() == Some(&0) {
            coeffs.pop();
        }
        Self { coeffs }
    }

    /// The monic linear polynomial `z − root`.
    #[must_use]
    pub fn linear(root: u64) -> Self {
        Self {
            coeffs: vec![neg(root), 1],
        }
    }

    /// The characteristic polynomial Π (z − sᵢ) of a set.
    #[must_use]
    pub fn characteristic(set: &[u64]) -> Self {
        // Product tree keeps this O(n²) worst case but with good
        // constants; sets here are at most tens of thousands.
        fn build(items: &[u64]) -> Poly {
            match items {
                [] => Poly::constant(1),
                [x] => Poly::linear(*x),
                _ => {
                    let mid = items.len() / 2;
                    build(&items[..mid]).mul(&build(&items[mid..]))
                }
            }
        }
        build(set)
    }

    /// True for the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree; 0 for constants, and (by convention here) 0 for zero.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Coefficient view.
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Leading coefficient (panics on zero polynomial).
    #[must_use]
    pub fn leading(&self) -> u64 {
        *self.coeffs.last().expect("zero polynomial has no leading coefficient")
    }

    /// Horner evaluation at `x`.
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add(mul(acc, x), c);
        }
        acc
    }

    /// Sum.
    #[must_use]
    pub fn addp(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u64; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *slot = add(a, b);
        }
        Self::from_coeffs(out)
    }

    /// Difference.
    #[must_use]
    pub fn subp(&self, other: &Self) -> Self {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = vec![0u64; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or(0);
            let b = other.coeffs.get(i).copied().unwrap_or(0);
            *slot = sub(a, b);
        }
        Self::from_coeffs(out)
    }

    /// Product (schoolbook).
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] = add(out[i + j], mul(a, b));
            }
        }
        Self::from_coeffs(out)
    }

    /// Scales by a constant.
    #[must_use]
    pub fn scale(&self, c: u64) -> Self {
        if c == 0 {
            return Self::zero();
        }
        Self::from_coeffs(self.coeffs.iter().map(|&a| mul(a, c)).collect())
    }

    /// Division with remainder: `self = q·divisor + r`, deg r < deg
    /// divisor. Panics if `divisor` is zero.
    #[must_use]
    pub fn divmod(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "division by zero polynomial");
        if self.coeffs.len() < divisor.coeffs.len() {
            return (Self::zero(), self.clone());
        }
        let lead_inv = inv(divisor.leading());
        let mut rem = self.coeffs.clone();
        let dlen = divisor.coeffs.len();
        let mut quot = vec![0u64; rem.len() - dlen + 1];
        for i in (0..quot.len()).rev() {
            let head = rem[i + dlen - 1];
            if head == 0 {
                continue;
            }
            let q = mul(head, lead_inv);
            quot[i] = q;
            for (j, &dc) in divisor.coeffs.iter().enumerate() {
                rem[i + j] = sub(rem[i + j], mul(q, dc));
            }
        }
        (Self::from_coeffs(quot), Self::from_coeffs(rem))
    }

    /// Makes the polynomial monic.
    #[must_use]
    pub fn monic(&self) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        self.scale(inv(self.leading()))
    }

    /// Monic GCD by Euclid's algorithm.
    #[must_use]
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let (_, r) = a.divmod(&b);
            a = b;
            b = r;
        }
        a.monic()
    }

    /// Computes `(z + shift)^exp mod modulus` by square-and-multiply.
    #[must_use]
    pub fn linear_powmod(shift: u64, mut exp: u64, modulus: &Self) -> Self {
        assert!(modulus.degree() >= 1, "modulus must be non-constant");
        let base = Self::from_coeffs(vec![shift, 1]);
        let (_, mut base) = base.divmod(modulus);
        let mut acc = Self::constant(1);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base).divmod(modulus).1;
            }
            base = base.mul(&base).divmod(modulus).1;
            exp >>= 1;
        }
        acc
    }

    /// Extracts all roots, assuming the polynomial splits into *distinct*
    /// linear factors over GF(p) — which characteristic-polynomial
    /// quotients do by construction. Returns `None` if that assumption
    /// fails (repeated or non-linear factors), which callers treat as a
    /// verification failure.
    #[must_use]
    pub fn roots(&self, seed: u64) -> Option<Vec<u64>> {
        if self.is_zero() {
            return None;
        }
        if self.degree() == 0 {
            return Some(Vec::new());
        }
        // Reject repeated roots early: gcd(f, f') must be constant.
        let derivative = self.derivative();
        if derivative.is_zero() || self.gcd(&derivative).degree() != 0 {
            return None;
        }
        // All roots must lie in GF(p): z^p − z must kill f, i.e.
        // gcd(z^p − z, f) == f. Equivalently (z)^p mod f == z mod f.
        let zp = Self::linear_powmod(0, P, self);
        let z = Self::from_coeffs(vec![0, 1]).divmod(self).1;
        if zp != z {
            return None;
        }
        let mut rng = Xoshiro256StarStar::new(seed ^ 0x9D05_ECB0);
        let mut out = Vec::with_capacity(self.degree());
        let mut stack = vec![self.monic()];
        let mut attempts = 0usize;
        while let Some(f) = stack.pop() {
            match f.degree() {
                0 => {}
                1 => {
                    // z + c0 (monic) → root = −c0.
                    out.push(neg(f.coeffs[0]));
                }
                _ => {
                    attempts += 1;
                    if attempts > 64 * (self.degree() + 2) {
                        return None; // pathological input; bail out
                    }
                    let r = rng.below(P);
                    // h = (z + r)^((p−1)/2) − 1 splits the roots into the
                    // quadratic residues and the rest.
                    let h = Self::linear_powmod(r, (P - 1) / 2, &f)
                        .subp(&Self::constant(1));
                    let g = f.gcd(&h);
                    if g.degree() == 0 || g.degree() == f.degree() {
                        stack.push(f); // unlucky split; retry
                    } else {
                        let (q, rem) = f.divmod(&g);
                        debug_assert!(rem.is_zero());
                        stack.push(g);
                        stack.push(q.monic());
                    }
                }
            }
        }
        out.sort_unstable();
        Some(out)
    }

    /// Formal derivative.
    #[must_use]
    pub fn derivative(&self) -> Self {
        if self.coeffs.len() <= 1 {
            return Self::zero();
        }
        let out: Vec<u64> = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| mul(c, (i as u64) % P))
            .collect();
        Self::from_coeffs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characteristic_has_set_as_roots() {
        let set = [3u64, 17, 99, 12345];
        let chi = Poly::characteristic(&set);
        assert_eq!(chi.degree(), 4);
        assert_eq!(chi.leading(), 1, "characteristic polynomial is monic");
        for &s in &set {
            assert_eq!(chi.eval(s), 0, "χ({s}) must vanish");
        }
        assert_ne!(chi.eval(1), 0);
    }

    #[test]
    fn mul_and_divmod_are_inverse() {
        let a = Poly::characteristic(&[1, 2, 3]);
        let b = Poly::characteristic(&[10, 20]);
        let prod = a.mul(&b);
        let (q, r) = prod.divmod(&b);
        assert!(r.is_zero());
        assert_eq!(q, a);
        let (q2, r2) = prod.divmod(&a);
        assert!(r2.is_zero());
        assert_eq!(q2, b);
    }

    #[test]
    fn divmod_remainder_evaluates_consistently() {
        let f = Poly::from_coeffs(vec![5, 0, 3, 1, 9]);
        let g = Poly::from_coeffs(vec![7, 1, 2]);
        let (q, r) = f.divmod(&g);
        for x in [0u64, 1, 2, 999_999] {
            let lhs = f.eval(x);
            let rhs = add(mul(q.eval(x), g.eval(x)), r.eval(x));
            assert_eq!(lhs, rhs, "f = qg + r must hold at {x}");
        }
        assert!(r.degree() < g.degree());
    }

    #[test]
    fn gcd_finds_common_roots() {
        let a = Poly::characteristic(&[1, 2, 3, 4]);
        let b = Poly::characteristic(&[3, 4, 5, 6]);
        let g = a.gcd(&b);
        let expect = Poly::characteristic(&[3, 4]);
        assert_eq!(g, expect);
    }

    #[test]
    fn gcd_of_coprime_is_one() {
        let a = Poly::characteristic(&[1, 2]);
        let b = Poly::characteristic(&[3, 4]);
        assert_eq!(a.gcd(&b), Poly::constant(1));
    }

    #[test]
    fn roots_of_characteristic_polynomial() {
        let set = [42u64, 777, 31337, 1, P - 2];
        let chi = Poly::characteristic(&set);
        let mut expect = set.to_vec();
        expect.sort_unstable();
        let got = chi.roots(1).expect("splits into linear factors");
        assert_eq!(got, expect);
    }

    #[test]
    fn roots_rejects_repeated_factors() {
        let dbl = Poly::linear(5).mul(&Poly::linear(5));
        assert_eq!(dbl.roots(1), None);
    }

    #[test]
    fn roots_rejects_irreducible_quadratic() {
        // z² − s where s is a non-residue has no roots in GF(p).
        // Find a quadratic non-residue by Euler's criterion.
        let mut s = 2u64;
        while icd_util::modp::pow(s, (P - 1) / 2) == 1 {
            s += 1;
        }
        let poly = Poly::from_coeffs(vec![neg(s), 0, 1]);
        assert_eq!(poly.roots(2), None);
    }

    #[test]
    fn roots_of_larger_set() {
        let set: Vec<u64> = (0..60).map(|i| icd_util::hash::mix64(i) % P).collect();
        let chi = Poly::characteristic(&set);
        let mut expect = set;
        expect.sort_unstable();
        expect.dedup();
        let got = chi.roots(3).expect("all-linear");
        assert_eq!(got, expect);
    }

    #[test]
    fn linear_powmod_small_case() {
        // (z + 1)^2 mod (z^2) = 2z + 1.
        let m = Poly::from_coeffs(vec![0, 0, 1]);
        let r = Poly::linear_powmod(1, 2, &m);
        assert_eq!(r, Poly::from_coeffs(vec![1, 2]));
    }

    #[test]
    fn derivative_basic() {
        // d/dz (z³ + 2z + 7) = 3z² + 2.
        let f = Poly::from_coeffs(vec![7, 2, 0, 1]);
        assert_eq!(f.derivative(), Poly::from_coeffs(vec![2, 0, 3]));
        assert!(Poly::constant(5).derivative().is_zero());
    }

    #[test]
    fn zero_and_constant_edges() {
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::constant(0), Poly::zero());
        assert_eq!(Poly::characteristic(&[]), Poly::constant(1));
        let (q, r) = Poly::zero().divmod(&Poly::linear(3));
        assert!(q.is_zero() && r.is_zero());
    }

    #[test]
    #[should_panic(expected = "division by zero polynomial")]
    fn divide_by_zero_panics() {
        let _ = Poly::constant(1).divmod(&Poly::zero());
    }
}
