//! The exact mechanisms' plugs into the workspace-wide summary API.
//!
//! Three digests live here, one per §5.1 baseline implemented by this
//! crate: [`WholeSetDigest`] (ship every key), [`HashSetDigest`]
//! (truncated hashes), and [`CharPolyDigest`] (characteristic-polynomial
//! interpolation). Each implements `SetSummary`/`Reconciler`, so all
//! three run end-to-end through the real session state machines and the
//! experiment grid — not just the offline cost table.

use std::collections::HashSet;

use icd_summary::{
    FrameReader, FrameWriter, Reconciler, SetSummary, SummaryError, SummaryId, SummarySpec,
};

use crate::hashset::HashSetMessage;
use crate::poly::{key_to_field, reconcile, CharPolySketch, VERIFY_POINTS};
use crate::wholeset::WholeSetMessage;

// ---------------------------------------------------------------------------
// Whole set
// ---------------------------------------------------------------------------

/// The trivial exact baseline speaking the summary traits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WholeSetDigest {
    message: WholeSetMessage,
    keys: HashSet<u64>,
}

impl WholeSetDigest {
    /// Builds the digest of `keys`.
    #[must_use]
    pub fn build(keys: &[u64]) -> Self {
        let message = WholeSetMessage::build(keys);
        let keys = message.keys().iter().copied().collect();
        Self { message, keys }
    }

    /// Decodes a digest from its wire body.
    pub fn decode(body: &[u8]) -> Result<Self, SummaryError> {
        let mut r = FrameReader::new(body);
        let keys = r.u64s()?;
        r.finish()?;
        Ok(Self::build(&keys))
    }
}

impl Reconciler for WholeSetDigest {
    fn id(&self) -> SummaryId {
        SummaryId::WHOLE_SET
    }

    fn missing_at_peer(&self, local: &[u64]) -> Vec<u64> {
        self.message.missing_at_sender(local)
    }

    fn is_exact(&self) -> bool {
        true
    }
}

impl SetSummary for WholeSetDigest {
    fn encode_body(&self) -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.u64s(self.message.keys());
        w.finish()
    }

    fn probably_contains(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }
}

/// The whole-set registry entry.
#[must_use]
pub fn whole_set_spec() -> SummarySpec {
    SummarySpec {
        id: SummaryId::WHOLE_SET,
        label: "whole-set",
        build: |_sizing, _est, keys| Box::new(WholeSetDigest::build(keys)),
        decode: |body| Ok(Box::new(WholeSetDigest::decode(body)?)),
        wire_cost: |_sizing, est| 8.0 * est.summarized as f64 + 4.0,
        compute_cost: |_sizing, est| est.searched as f64,
        expected_recall: |_sizing, _est| 1.0,
    }
}

// ---------------------------------------------------------------------------
// Truncated hash set
// ---------------------------------------------------------------------------

/// The §5.1 truncated-hash baseline speaking the summary traits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashSetDigest {
    message: HashSetMessage,
}

impl HashSetDigest {
    /// Builds the digest of `keys` at `bits`-wide hashes.
    #[must_use]
    pub fn build(keys: &[u64], bits: u32) -> Self {
        Self {
            message: HashSetMessage::build(keys, bits),
        }
    }

    /// The wrapped message.
    #[must_use]
    pub fn message(&self) -> &HashSetMessage {
        &self.message
    }

    /// Decodes a digest from its wire body. Hashes are packed at
    /// `⌈bits/8⌉` bytes each.
    pub fn decode(body: &[u8]) -> Result<Self, SummaryError> {
        let mut r = FrameReader::new(body);
        let bits = u32::from(r.u8()?);
        if !(1..=64).contains(&bits) {
            return Err(SummaryError::Malformed("hash width out of range"));
        }
        let count = r.checked_len()?;
        let width = bits.div_ceil(8) as usize;
        // Take the whole packed block against the real buffer length
        // before allocating anything sized by the claimed count.
        let raw = r.raw(
            count
                .checked_mul(width)
                .ok_or(SummaryError::Malformed("hash count overflow"))?,
        )?;
        let hashes: Vec<u64> = raw
            .chunks_exact(width)
            .map(|chunk| {
                let mut buf = [0u8; 8];
                buf[..width].copy_from_slice(chunk);
                u64::from_le_bytes(buf)
            })
            .collect();
        r.finish()?;
        let message = HashSetMessage::from_parts(hashes, bits)
            .ok_or(SummaryError::Malformed("hash exceeds declared width"))?;
        Ok(Self { message })
    }
}

impl Reconciler for HashSetDigest {
    fn id(&self) -> SummaryId {
        SummaryId::HASH_SET
    }

    fn missing_at_peer(&self, local: &[u64]) -> Vec<u64> {
        self.message.missing_at_sender(local)
    }
}

impl SetSummary for HashSetDigest {
    fn encode_body(&self) -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.u8(u8::try_from(self.message.bits()).expect("bits <= 64"));
        let hashes = self.message.hashes_sorted();
        w.u32(u32::try_from(hashes.len()).expect("hash count fits u32"));
        let width = self.message.bits().div_ceil(8) as usize;
        for h in hashes {
            for &b in &h.to_le_bytes()[..width] {
                w.u8(b);
            }
        }
        w.finish()
    }

    fn probably_contains(&self, key: u64) -> bool {
        // A collision answers "contained" — the safe, one-sided error.
        self.message.contains_hash_of(key)
    }
}

/// The hash-set registry entry.
#[must_use]
pub fn hash_set_spec() -> SummarySpec {
    SummarySpec {
        id: SummaryId::HASH_SET,
        label: "hash-set",
        build: |sizing, _est, keys| Box::new(HashSetDigest::build(keys, sizing.hash_bits)),
        decode: |body| Ok(Box::new(HashSetDigest::decode(body)?)),
        wire_cost: |sizing, est| {
            f64::from(sizing.hash_bits.div_ceil(8)) * est.summarized as f64 + 5.0
        },
        compute_cost: |_sizing, est| est.searched as f64,
        expected_recall: |sizing, est| {
            // P(a foreign key's hash misses every occupied slot).
            (1.0 - est.summarized as f64 / f64::from(sizing.hash_bits).exp2()).max(0.0)
        },
    }
}

// ---------------------------------------------------------------------------
// Characteristic polynomial
// ---------------------------------------------------------------------------

/// The Minsky–Trachtenberg sketch speaking the summary traits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharPolyDigest {
    sketch: CharPolySketch,
}

/// Decoder-side cap on the sketch bound. Reconciliation costs Θ(m̄³)
/// compute and Θ(m̄²) memory, so a peer-declared bound is an attack
/// surface: frames beyond the build-side default
/// (`SummarySizing::poly_max_bound`, 4096) are rejected at decode
/// instead of detonating inside `missing_at_peer`. This bounds — it
/// does not eliminate — the work one hostile frame can force; a
/// deployment facing untrusted peers at scale registers a custom spec
/// with a decoder capped at its own `poly_max_bound`.
pub const MAX_DECODE_BOUND: usize = 4096;

impl CharPolyDigest {
    /// Builds the digest of `keys` for discrepancy bound `bound`.
    #[must_use]
    pub fn build(keys: &[u64], bound: usize) -> Self {
        Self {
            sketch: CharPolySketch::build(keys, bound),
        }
    }

    /// The wrapped sketch.
    #[must_use]
    pub fn sketch(&self) -> &CharPolySketch {
        &self.sketch
    }

    /// Decodes a digest from its wire body.
    pub fn decode(body: &[u8]) -> Result<Self, SummaryError> {
        let mut r = FrameReader::new(body);
        let bound = r.u32()? as usize;
        if bound > MAX_DECODE_BOUND {
            return Err(SummaryError::Malformed("char-poly bound exceeds decoder limit"));
        }
        let set_size = r.u64()?;
        let evals = r.u64s()?;
        r.finish()?;
        let sketch = CharPolySketch::from_parts(evals, bound, set_size)
            .ok_or(SummaryError::Malformed("char-poly evaluation count mismatch"))?;
        Ok(Self { sketch })
    }
}

impl Reconciler for CharPolyDigest {
    fn id(&self) -> SummaryId {
        SummaryId::CHAR_POLY
    }

    /// Runs the rational interpolation. Exact when the true discrepancy
    /// fits the sketch bound; a detected bound failure yields the empty
    /// diff (the mechanism contributes nothing rather than something
    /// wrong — §5.1's "prohibitive except when d is known").
    fn missing_at_peer(&self, local: &[u64]) -> Vec<u64> {
        match reconcile(&self.sketch, local) {
            Ok(diff) => {
                let images: HashSet<u64> = diff.b_minus_a.into_iter().collect();
                let mut out: Vec<u64> = local
                    .iter()
                    .copied()
                    .filter(|&k| images.contains(&key_to_field(k)))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
            Err(_) => Vec::new(),
        }
    }

    fn is_exact(&self) -> bool {
        true
    }
}

impl SetSummary for CharPolyDigest {
    fn encode_body(&self) -> Vec<u8> {
        let mut w = FrameWriter::new();
        w.u32(u32::try_from(self.sketch.bound()).expect("bound fits u32"));
        w.u64(self.sketch.set_size());
        w.u64s(self.sketch.evals());
        w.finish()
    }

    /// Per-key membership is not answerable from polynomial evaluations;
    /// the conservative answer never wrongly reports an absence.
    fn probably_contains(&self, _key: u64) -> bool {
        true
    }

    /// Estimated difference via a full reconciliation against `keys`.
    fn estimated_difference(&self, keys: &[u64]) -> usize {
        self.missing_at_peer(keys).len()
    }
}

/// The characteristic-polynomial registry entry.
#[must_use]
pub fn char_poly_spec() -> SummarySpec {
    SummarySpec {
        id: SummaryId::CHAR_POLY,
        label: "char-poly",
        build: |sizing, est, keys| {
            Box::new(CharPolyDigest::build(keys, sizing.poly_bound(est.expected_delta)))
        },
        decode: |body| Ok(Box::new(CharPolyDigest::decode(body)?)),
        wire_cost: |sizing, est| {
            8.0 * (sizing.poly_bound(est.expected_delta) + VERIFY_POINTS) as f64 + 16.0
        },
        compute_cost: |sizing, est| {
            // Θ(m̄·(|A|+|B|)) evaluation work plus the Θ(m̄³) solve —
            // the costs §5.1 calls prohibitive when d is large.
            let bound = sizing.poly_bound(est.expected_delta) as f64;
            bound * (est.summarized + est.searched) as f64 + bound.powi(3)
        },
        expected_recall: |sizing, est| {
            // Exact when the margin covers the true discrepancy; the
            // haircut prices the sketch-noise risk of undershooting.
            // When `poly_max_bound` caps the sketch below the estimated
            // difference the reconciliation is guaranteed to fail
            // (detectably, yielding nothing) — advertise that honestly
            // so policy never selects a mechanism that cannot deliver.
            if sizing.poly_bound(est.expected_delta) < est.expected_delta {
                0.0
            } else {
                0.98
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_summary::{DiffEstimate, SummarySizing};
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    fn keys(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    fn planted(shared: usize, fresh: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let a = keys(shared, seed);
        let extra = keys(fresh, seed ^ 0xFF);
        let mut b = a.clone();
        b.extend(extra.iter().copied());
        (a, b, extra)
    }

    #[test]
    fn whole_set_digest_is_exact() {
        let (a, b, extra) = planted(500, 40, 1);
        let digest = WholeSetDigest::build(&a);
        let back = WholeSetDigest::decode(&digest.encode_body()).expect("decode");
        let mut want = extra.clone();
        want.sort_unstable();
        assert_eq!(back.missing_at_peer(&b), want);
        assert!(back.is_exact());
        assert!(digest.probably_contains(a[0]));
        assert!(!digest.probably_contains(extra[0]));
    }

    #[test]
    fn hash_set_digest_roundtrips_packed() {
        let (a, b, extra) = planted(2000, 100, 2);
        for bits in [8u32, 12, 16, 24, 64] {
            let digest = HashSetDigest::build(&a, bits);
            let body = digest.encode_body();
            let back = HashSetDigest::decode(&body).expect("decode");
            assert_eq!(back.missing_at_peer(&b), digest.missing_at_peer(&b));
            // One-sided: reported ⊆ planted difference.
            for id in back.missing_at_peer(&b) {
                assert!(extra.contains(&id));
            }
            // Packing claim: ⌈bits/8⌉ bytes per distinct hash + header.
            assert_eq!(
                body.len(),
                5 + digest.message().len() * bits.div_ceil(8) as usize
            );
        }
    }

    #[test]
    fn hash_set_decode_rejects_garbage() {
        assert!(HashSetDigest::decode(&[0]).is_err(), "width 0");
        assert!(HashSetDigest::decode(&[65, 0, 0, 0, 0]).is_err(), "width 65");
        let digest = HashSetDigest::build(&keys(10, 3), 16);
        let body = digest.encode_body();
        for cut in 0..body.len() {
            assert!(HashSetDigest::decode(&body[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn char_poly_digest_recovers_exact_difference() {
        let (a, b, extra) = planted(400, 30, 4);
        let digest = CharPolyDigest::build(&a, 64);
        let back = CharPolyDigest::decode(&digest.encode_body()).expect("decode");
        let mut want = extra.clone();
        want.sort_unstable();
        assert_eq!(back.missing_at_peer(&b), want);
        assert_eq!(back.estimated_difference(&b), extra.len());
        assert!(back.probably_contains(12345), "conservative membership");
    }

    #[test]
    fn char_poly_bound_failure_yields_empty_not_wrong() {
        let (a, b, _) = planted(400, 100, 5);
        let digest = CharPolyDigest::build(&a, 16); // d = 100 > 16
        assert!(digest.missing_at_peer(&b).is_empty());
    }

    #[test]
    fn char_poly_decode_caps_peer_declared_bound() {
        // A frame declaring a huge bound must be rejected at decode —
        // the Θ(m̄³) solve it would trigger is the attack, not the body
        // size. (Hand-crafted: the codec length checks alone pass.)
        let claimed = (MAX_DECODE_BOUND + 1) as u32;
        let mut w = icd_summary::FrameWriter::new();
        w.u32(claimed);
        w.u64(1000);
        w.u64s(&vec![1u64; MAX_DECODE_BOUND + 1 + crate::poly::VERIFY_POINTS]);
        assert!(matches!(
            CharPolyDigest::decode(&w.finish()),
            Err(SummaryError::Malformed(_))
        ));
        // At the cap itself, decode still works.
        let digest = CharPolyDigest::build(&keys(50, 6), 32);
        assert!(CharPolyDigest::decode(&digest.encode_body()).is_ok());
    }

    #[test]
    fn hash_set_decode_checks_length_before_allocating() {
        // Body claiming ~16.7M hashes with no bytes behind it: must fail
        // on the length check, not allocate by the claimed count.
        let body = [16u8, 0xFF, 0xFF, 0xFF, 0x00];
        assert!(matches!(
            HashSetDigest::decode(&body),
            Err(SummaryError::Malformed(_))
        ));
    }

    #[test]
    fn advertised_costs_are_finite_and_ordered() {
        let sizing = SummarySizing::default();
        let est = DiffEstimate::new(5000, 5100, 100);
        let poly = (char_poly_spec().wire_cost)(&sizing, &est);
        let hash = (hash_set_spec().wire_cost)(&sizing, &est);
        let whole = (whole_set_spec().wire_cost)(&sizing, &est);
        // §5.1's ordering: poly ≪ hash < whole for a small difference.
        assert!(poly < hash, "poly {poly} vs hash {hash}");
        assert!(hash < whole, "hash {hash} vs whole {whole}");
    }
}
