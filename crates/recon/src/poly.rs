//! Characteristic-polynomial set reconciliation
//! (Minsky–Trachtenberg–Zippel, the paper's reference \[19\]).
//!
//! Peer A evaluates the characteristic polynomial χ_A(z) = Π_{a∈A}(z − a)
//! of its (field-hashed) key set at `m̄` agreed sample points and sends
//! the evaluations — O(m̄ log u) bits. Peer B divides by its own χ_B at
//! the same points; the reduced rational function is
//! χ_{A∖B}(z) / χ_{B∖A}(z), which B recovers by rational interpolation
//! (a (d×d) linear solve — the Θ(d³) the paper cites) and factors into
//! roots (the difference elements) by equal-degree splitting.
//!
//! The method is *exact* when the true discrepancy d = |AΔB| is at most
//! `m̄`, and detectably fails otherwise (verification points disagree) —
//! which is precisely §5.1's complaint: "this approach therefore is
//! prohibitive except when d is known and known to be small".

use icd_util::hash::mix64;
use icd_util::modp::{canon, div, mul, sub};

use crate::polyfield::Poly;

/// Seed for the universally agreed evaluation points.
const POINT_SEED: u64 = 0x4D54_5A5F_504F_494E; // "MTZ_POIN"

/// Errors surfaced by the reconciliation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolyError {
    /// The discrepancy exceeds the sketch's bound `m̄`; retry with a
    /// larger bound.
    BoundExceeded,
    /// An evaluation point collided with a set element (χ_B(z) = 0).
    /// Astronomically unlikely with hashed 61-bit keys; surfaced rather
    /// than silently mishandled.
    DegeneratePoint,
}

impl std::fmt::Display for PolyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BoundExceeded => write!(f, "set discrepancy exceeds the sketch bound"),
            Self::DegeneratePoint => write!(f, "evaluation point collided with a set element"),
        }
    }
}

impl std::error::Error for PolyError {}

/// Maps an arbitrary 64-bit key into the field (shared by both peers).
#[inline]
#[must_use]
pub fn key_to_field(key: u64) -> u64 {
    canon(mix64(key ^ 0x4D54_5A21)) // "MTZ!"
}

/// The agreed evaluation points: `bound` interpolation points plus
/// `verify` check points.
#[must_use]
fn sample_points(count: usize) -> Vec<u64> {
    // SplitMix stream over the field; deterministic protocol constant.
    (0..count as u64)
        .map(|i| canon(mix64(POINT_SEED.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))))
        .collect()
}

/// Peer A's transmissible sketch: χ_A evaluated at `bound + verify`
/// points, plus |A|.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharPolySketch {
    evals: Vec<u64>,
    bound: usize,
    set_size: u64,
}

/// Number of extra evaluation points used to verify the interpolation.
pub const VERIFY_POINTS: usize = 4;

impl CharPolySketch {
    /// Builds the sketch of `keys` for discrepancy bound `bound`.
    ///
    /// Cost: Θ(bound · |keys|) field operations — the preprocessing cost
    /// §5.1 attributes to this method.
    #[must_use]
    pub fn build(keys: &[u64], bound: usize) -> Self {
        assert!(bound >= 1, "discrepancy bound must be at least 1");
        let points = sample_points(bound + VERIFY_POINTS);
        let elems: Vec<u64> = keys.iter().map(|&k| key_to_field(k)).collect();
        let evals = points
            .iter()
            .map(|&z| {
                elems
                    .iter()
                    .fold(1u64, |acc, &e| mul(acc, sub(z, e)))
            })
            .collect();
        Self {
            evals,
            bound,
            set_size: keys.len() as u64,
        }
    }

    /// The discrepancy bound `m̄` this sketch supports.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Advertised |A|.
    #[must_use]
    pub fn set_size(&self) -> u64 {
        self.set_size
    }

    /// Wire size in bytes: 8 per evaluation — the O(d log u) transmission
    /// cost (compare: a Bloom filter costs O(|S_A|)).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        self.evals.len() * 8
    }

    /// The raw evaluations (wire encoding).
    #[must_use]
    pub fn evals(&self) -> &[u64] {
        &self.evals
    }

    /// Reassembles a sketch from its parts (wire decoding). Returns
    /// `None` when the evaluation count does not match the bound plus
    /// the protocol's verification points.
    #[must_use]
    pub fn from_parts(evals: Vec<u64>, bound: usize, set_size: u64) -> Option<Self> {
        if bound == 0 || evals.len() != bound + VERIFY_POINTS {
            return None;
        }
        Some(Self {
            evals,
            bound,
            set_size,
        })
    }
}

/// The exact difference recovered by the polynomial method, as *field
/// elements* (hashed keys). The caller maps its own side back to raw
/// keys; the peer's side is requested by hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyDifference {
    /// Field images of elements in A ∖ B.
    pub a_minus_b: Vec<u64>,
    /// Field images of elements in B ∖ A.
    pub b_minus_a: Vec<u64>,
}

/// Reconciles peer B's `keys` against peer A's sketch.
///
/// Returns the exact symmetric difference if it fits the sketch bound,
/// `Err(BoundExceeded)` if not (detected via the verification points or
/// a failed factorization).
pub fn reconcile(sketch: &CharPolySketch, keys: &[u64]) -> Result<PolyDifference, PolyError> {
    let m = sketch.bound;
    let points = sample_points(m + VERIFY_POINTS);
    let elems: Vec<u64> = keys.iter().map(|&k| key_to_field(k)).collect();

    // f_i = χ_A(z_i) / χ_B(z_i).
    let mut ratios = Vec::with_capacity(points.len());
    for (i, &z) in points.iter().enumerate() {
        let chi_b = elems.iter().fold(1u64, |acc, &e| mul(acc, sub(z, e)));
        if chi_b == 0 || sketch.evals[i] == 0 {
            return Err(PolyError::DegeneratePoint);
        }
        ratios.push(div(sketch.evals[i], chi_b));
    }

    // Degrees of the reduced numerator/denominator: dA − dB = |A| − |B|
    // exactly, dA + dB ≤ m. The largest consistent split is
    // dB = ⌊(m − Δ)/2⌋, dA = dB + Δ; slack beyond the true degrees shows
    // up as a common factor, removed by the gcd below.
    let delta = sketch.set_size as i64 - keys.len() as i64;
    if delta.unsigned_abs() as usize > m {
        return Err(PolyError::BoundExceeded);
    }
    let db = ((m as i64 - delta).max(0) / 2) as usize;
    let da_signed = db as i64 + delta;
    if da_signed < 0 {
        return Err(PolyError::BoundExceeded);
    }
    let da = da_signed as usize;

    // Solve for monic P (deg da) and monic Q (deg db):
    //   P(z_i) − f_i·Q(z_i) = 0
    // Unknowns: p_0..p_{da−1}, q_0..q_{db−1}.
    let unknowns = da + db;
    if unknowns > ratios.len() - VERIFY_POINTS {
        return Err(PolyError::BoundExceeded);
    }
    let mut matrix: Vec<Vec<u64>> = Vec::with_capacity(unknowns);
    let mut rhs: Vec<u64> = Vec::with_capacity(unknowns);
    for i in 0..unknowns {
        let z = points[i];
        let f = ratios[i];
        let mut row = Vec::with_capacity(unknowns);
        // P coefficients.
        let mut zp = 1u64;
        for _ in 0..da {
            row.push(zp);
            zp = mul(zp, z);
        }
        let z_da = zp; // z^da
        // Q coefficients (negated by the equation).
        let mut zq = 1u64;
        for _ in 0..db {
            row.push(sub(0, mul(f, zq)));
            zq = mul(zq, z);
        }
        let z_db = zq; // z^db
        matrix.push(row);
        // Move monic terms to the RHS: f·z^db − z^da.
        rhs.push(sub(mul(f, z_db), z_da));
    }
    let solution = solve_linear(&mut matrix, &mut rhs).ok_or(PolyError::BoundExceeded)?;

    let mut p_coeffs = solution[..da].to_vec();
    p_coeffs.push(1); // monic
    let mut q_coeffs = solution[da..].to_vec();
    q_coeffs.push(1);
    let p_poly = Poly::from_coeffs(p_coeffs);
    let q_poly = Poly::from_coeffs(q_coeffs);

    // Remove any common factor (bound larger than true discrepancy).
    let g = p_poly.gcd(&q_poly);
    let (p_poly, rp) = p_poly.divmod(&g);
    let (q_poly, rq) = q_poly.divmod(&g);
    debug_assert!(rp.is_zero() && rq.is_zero());

    // Verify on the held-out points.
    for i in unknowns..ratios.len() {
        let z = points[i];
        let qv = q_poly.eval(z);
        if qv == 0 {
            return Err(PolyError::BoundExceeded);
        }
        if div(p_poly.eval(z), qv) != ratios[i] {
            return Err(PolyError::BoundExceeded);
        }
    }

    let a_minus_b = p_poly.roots(1).ok_or(PolyError::BoundExceeded)?;
    let b_minus_a = q_poly.roots(2).ok_or(PolyError::BoundExceeded)?;
    Ok(PolyDifference {
        a_minus_b,
        b_minus_a,
    })
}

/// Gaussian elimination over GF(p), tolerant of rank deficiency.
///
/// When the sketch bound exceeds the true discrepancy the interpolation
/// system is consistent but underdetermined (the solution family is
/// {P·R, Q·R} over monic R); any particular solution serves, so free
/// variables are pinned to zero. Returns `None` only when the system is
/// genuinely inconsistent.
fn solve_linear(matrix: &mut [Vec<u64>], rhs: &mut [u64]) -> Option<Vec<u64>> {
    let rows = matrix.len();
    let cols = if rows == 0 { 0 } else { matrix[0].len() };
    debug_assert!(matrix.iter().all(|row| row.len() == cols));
    let mut pivot_row_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut rank = 0usize;
    for col in 0..cols {
        let Some(pivot) = (rank..rows).find(|&r| matrix[r][col] != 0) else {
            continue; // free column
        };
        matrix.swap(rank, pivot);
        rhs.swap(rank, pivot);
        let inv_p = icd_util::modp::inv(matrix[rank][col]);
        for v in &mut matrix[rank][col..] {
            *v = mul(*v, inv_p);
        }
        rhs[rank] = mul(rhs[rank], inv_p);
        // Borrow-splitting: lift the pivot row out while eliminating it
        // from every other row, then put it back.
        let pivot_row = std::mem::take(&mut matrix[rank]);
        for (r, row) in matrix.iter_mut().enumerate() {
            if r != rank && !row.is_empty() && row[col] != 0 {
                let factor = row[col];
                for (t, &p) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                    *t = sub(*t, mul(factor, p));
                }
                let delta = mul(factor, rhs[rank]);
                rhs[r] = sub(rhs[r], delta);
            }
        }
        matrix[rank] = pivot_row;
        pivot_row_of_col[col] = Some(rank);
        rank += 1;
        if rank == rows {
            break;
        }
    }
    // Rows below the rank are all-zero; a non-zero RHS there means the
    // system is inconsistent.
    if rhs[rank..].iter().any(|&v| v != 0) {
        return None;
    }
    // Free variables = 0; pivot variables read straight off the reduced
    // rows (their free-column coefficients multiply zeros).
    let mut solution = vec![0u64; cols];
    for (col, pivot) in pivot_row_of_col.iter().enumerate() {
        if let Some(r) = pivot {
            solution[col] = rhs[*r];
        }
    }
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};
    use std::collections::HashSet;

    /// Generates (a_keys, b_keys) with `shared` common keys and the given
    /// per-side exclusives.
    fn scenario(shared: usize, a_only: usize, b_only: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let common: Vec<u64> = (0..shared).map(|_| rng.next_u64()).collect();
        let ax: Vec<u64> = (0..a_only).map(|_| rng.next_u64()).collect();
        let bx: Vec<u64> = (0..b_only).map(|_| rng.next_u64()).collect();
        let mut a = common.clone();
        a.extend(ax);
        let mut b = common;
        b.extend(bx);
        (a, b)
    }

    fn field_set(keys: &[u64]) -> HashSet<u64> {
        keys.iter().map(|&k| key_to_field(k)).collect()
    }

    #[test]
    fn exact_difference_small() {
        let (a, b) = scenario(100, 3, 5, 1);
        let sketch = CharPolySketch::build(&a, 10);
        let diff = reconcile(&sketch, &b).expect("within bound");
        let a_set = field_set(&a);
        let b_set = field_set(&b);
        let expect_ab: HashSet<u64> = a_set.difference(&b_set).copied().collect();
        let expect_ba: HashSet<u64> = b_set.difference(&a_set).copied().collect();
        assert_eq!(diff.a_minus_b.iter().copied().collect::<HashSet<_>>(), expect_ab);
        assert_eq!(diff.b_minus_a.iter().copied().collect::<HashSet<_>>(), expect_ba);
    }

    #[test]
    fn exact_difference_at_bound() {
        // d exactly equals the bound.
        let (a, b) = scenario(50, 4, 6, 2);
        let sketch = CharPolySketch::build(&a, 10);
        let diff = reconcile(&sketch, &b).expect("d == bound is fine");
        assert_eq!(diff.a_minus_b.len(), 4);
        assert_eq!(diff.b_minus_a.len(), 6);
    }

    #[test]
    fn bound_exceeded_is_detected() {
        let (a, b) = scenario(50, 10, 10, 3);
        let sketch = CharPolySketch::build(&a, 8); // d = 20 > 8
        assert_eq!(reconcile(&sketch, &b), Err(PolyError::BoundExceeded));
    }

    #[test]
    fn identical_sets_empty_difference() {
        let (a, _) = scenario(80, 0, 0, 4);
        let sketch = CharPolySketch::build(&a, 6);
        let diff = reconcile(&sketch, &a).expect("identical");
        assert!(diff.a_minus_b.is_empty());
        assert!(diff.b_minus_a.is_empty());
    }

    #[test]
    fn one_sided_differences() {
        // B ⊂ A.
        let (a, b) = scenario(60, 7, 0, 5);
        let sketch = CharPolySketch::build(&a, 9);
        let diff = reconcile(&sketch, &b).expect("one-sided");
        assert_eq!(diff.a_minus_b.len(), 7);
        assert!(diff.b_minus_a.is_empty());
        // And the mirror image.
        let (a2, b2) = scenario(60, 0, 7, 6);
        let sketch2 = CharPolySketch::build(&a2, 9);
        let diff2 = reconcile(&sketch2, &b2).expect("one-sided");
        assert!(diff2.a_minus_b.is_empty());
        assert_eq!(diff2.b_minus_a.len(), 7);
    }

    #[test]
    fn disjoint_small_sets() {
        let (a, b) = scenario(0, 5, 5, 7);
        let sketch = CharPolySketch::build(&a, 12);
        let diff = reconcile(&sketch, &b).expect("disjoint");
        assert_eq!(diff.a_minus_b.len(), 5);
        assert_eq!(diff.b_minus_a.len(), 5);
    }

    #[test]
    fn loose_bound_still_exact() {
        // Bound much larger than d: gcd reduction must strip the slack.
        let (a, b) = scenario(100, 2, 3, 8);
        let sketch = CharPolySketch::build(&a, 40);
        let diff = reconcile(&sketch, &b).expect("loose bound");
        assert_eq!(diff.a_minus_b.len(), 2);
        assert_eq!(diff.b_minus_a.len(), 3);
    }

    #[test]
    fn moderate_discrepancy() {
        let (a, b) = scenario(500, 30, 25, 9);
        let sketch = CharPolySketch::build(&a, 64);
        let diff = reconcile(&sketch, &b).expect("d = 55 ≤ 64");
        assert_eq!(diff.a_minus_b.len(), 30);
        assert_eq!(diff.b_minus_a.len(), 25);
    }

    #[test]
    fn wire_size_is_linear_in_bound_not_set() {
        let (a, _) = scenario(10_000, 0, 0, 10);
        let sketch = CharPolySketch::build(&a, 16);
        assert_eq!(sketch.wire_size(), (16 + VERIFY_POINTS) * 8);
        // The §5.1 pitch: 10 000 keys reconciled in ~160 bytes.
        assert!(sketch.wire_size() < 200);
    }

    #[test]
    fn empty_b_recovers_all_of_a() {
        let (a, _) = scenario(0, 6, 0, 11);
        let sketch = CharPolySketch::build(&a, 8);
        let diff = reconcile(&sketch, &[]).expect("empty B");
        assert_eq!(diff.a_minus_b.len(), 6);
        assert_eq!(
            diff.a_minus_b.iter().copied().collect::<HashSet<_>>(),
            field_set(&a)
        );
    }
}
