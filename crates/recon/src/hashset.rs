//! The hashed exact-ish baseline: ship truncated hashes (§5.1).
//!
//! "Suppose the set elements are hashed using a random hash function into
//! a universe U' = [0, h). Peer A then hashes each element and sends the
//! set of hashes instead ... Now only O(|S_A| log h) bits are
//! transmitted. Strictly speaking, this process may not yield the exact
//! difference: there is some probability that an element x ∈ S_B ∖ S_A
//! will have the same hash value as an element of S_A, in which case
//! peer B will mistakenly believe x ∈ S_A."
//!
//! The error is one-sided in the *safe* direction for content delivery
//! (a useful symbol is withheld, never a redundant one sent), exactly
//! like Bloom filters but at a different size/accuracy point. The hash
//! width `h = 2^bits` is a parameter; §5.1's inverse-polynomial miss rate
//! corresponds to `bits ≈ c·log2 |S_A|`.

use icd_util::hash::hash64;
use std::collections::HashSet;

/// Seed namespacing the truncated hash (protocol constant).
const HASH_SEED: u64 = 0x4841_5348_5345_5421; // "HASHSET!"

/// Peer A's message: the set of `bits`-wide hashes of its keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashSetMessage {
    hashes: HashSet<u64>,
    bits: u32,
}

impl HashSetMessage {
    /// Builds the message with `bits`-wide truncated hashes (1–64).
    #[must_use]
    pub fn build(keys: &[u64], bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "hash width must be 1..=64 bits");
        let hashes = keys.iter().map(|&k| Self::hash(k, bits)).collect();
        Self { hashes, bits }
    }

    fn hash(key: u64, bits: u32) -> u64 {
        let h = hash64(key, HASH_SEED);
        if bits == 64 {
            h
        } else {
            h >> (64 - bits)
        }
    }

    /// Hash width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of distinct hashes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True if no hashes are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Wire size in bytes: `⌈|S_A|·bits / 8⌉` (hashes packed).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        (self.hashes.len() * self.bits as usize).div_ceil(8)
    }

    /// Whether `key`'s truncated hash is present — "probably held" in
    /// the Bloom sense: a collision answers positively (the safe
    /// direction), a miss proves absence. O(1), no allocation.
    #[must_use]
    pub fn contains_hash_of(&self, key: u64) -> bool {
        self.hashes.contains(&Self::hash(key, self.bits))
    }

    /// Computes (a superset-free approximation of) S_B ∖ S_A: every key
    /// whose hash is absent is *definitely* missing at A; keys whose hash
    /// collides are (wrongly, with probability ≈ |S_A|/2^bits) withheld.
    #[must_use]
    pub fn missing_at_sender(&self, b_keys: &[u64]) -> Vec<u64> {
        let mut out: Vec<u64> = b_keys
            .iter()
            .copied()
            .filter(|&k| !self.contains_hash_of(k))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Analytic per-element miss probability for a foreign key: the
    /// chance its hash lands on an occupied slot, `|hashes| / 2^bits`
    /// (capped at 1).
    #[must_use]
    pub fn analytic_miss_rate(&self) -> f64 {
        (self.hashes.len() as f64 / (self.bits as f64).exp2()).min(1.0)
    }

    /// The distinct hashes, sorted (wire encoding).
    #[must_use]
    pub fn hashes_sorted(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.hashes.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Reassembles a message from already-truncated hashes (wire
    /// decoding). Returns `None` for an out-of-range width or a hash
    /// exceeding it.
    #[must_use]
    pub fn from_parts(hashes: Vec<u64>, bits: u32) -> Option<Self> {
        if !(1..=64).contains(&bits) {
            return None;
        }
        if bits < 64 && hashes.iter().any(|&h| h >> bits != 0) {
            return None;
        }
        Some(Self {
            hashes: hashes.into_iter().collect(),
            bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    #[test]
    fn wide_hashes_give_exact_difference() {
        let a = [1u64, 2, 3, 4];
        let b = [3u64, 4, 5, 6];
        let msg = HashSetMessage::build(&a, 64);
        assert_eq!(msg.missing_at_sender(&b), vec![5, 6]);
    }

    #[test]
    fn reported_missing_is_truly_missing() {
        // One-sided error: reported ⊆ true difference, always.
        let mut rng = Xoshiro256StarStar::new(1);
        let a: Vec<u64> = (0..2000).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = a[..1000]
            .iter()
            .copied()
            .chain((0..1000).map(|_| rng.next_u64()))
            .collect();
        let a_set: std::collections::HashSet<u64> = a.iter().copied().collect();
        for bits in [8, 12, 16, 32] {
            let msg = HashSetMessage::build(&a, bits);
            for k in msg.missing_at_sender(&b) {
                assert!(!a_set.contains(&k), "{k} wrongly reported at {bits} bits");
            }
        }
    }

    #[test]
    fn narrow_hashes_miss_some() {
        let mut rng = Xoshiro256StarStar::new(2);
        let a: Vec<u64> = (0..5000).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..5000).map(|_| rng.next_u64()).collect(); // disjoint
        let msg = HashSetMessage::build(&a, 12); // 4096 slots for 5000 keys
        let found = msg.missing_at_sender(&b).len();
        assert!(found < b.len(), "12-bit hashes must collide somewhere");
        // Analytic rate: 1 − (1 − 2^−12)^5000 ≈ 0.705 → found ≈ 0.295·5000.
        let expect = (1.0 - msg.analytic_miss_rate()) * b.len() as f64;
        let got = found as f64;
        assert!(
            (got - expect).abs() < 0.1 * b.len() as f64,
            "found {got}, analytic {expect}"
        );
    }

    #[test]
    fn wire_size_scales_with_bits() {
        let a: Vec<u64> = (0..1000).collect();
        let m16 = HashSetMessage::build(&a, 16);
        let m64 = HashSetMessage::build(&a, 64);
        // Truncated hashes may collide among A's own keys, so size is
        // per *distinct hash* (that is all that crosses the wire).
        assert_eq!(m16.wire_size(), m16.len() * 2);
        assert!(m16.len() > 980, "16-bit collisions should be rare at n=1000");
        assert_eq!(m64.len(), 1000);
        assert_eq!(m64.wire_size(), 8000);
    }

    #[test]
    #[should_panic(expected = "hash width")]
    fn zero_bits_rejected() {
        let _ = HashSetMessage::build(&[1], 0);
    }
}
