//! Set reconciliation baselines and cost accounting (§5.1).
//!
//! The paper motivates its *approximate* methods (Bloom filters, ARTs) by
//! arguing that exact approaches are "prohibitive in either computation
//! time or transmission size". This crate implements those exact
//! approaches so the claim can be measured rather than assumed:
//!
//! * [`wholeset`] — peer A ships its entire key set: O(|S_A| log u) bits,
//!   zero error.
//! * [`hashset`] — peer A ships h-bit hashes of its keys: O(|S_A| log h)
//!   bits, inverse-polynomial miss probability (§5.1's middle option).
//! * [`poly`] — the characteristic-polynomial method of
//!   Minsky–Trachtenberg–Zippel (the paper's reference \[19\]): O(d log u)
//!   bits for discrepancy d, but Θ(d·|S|) field operations of
//!   preprocessing and Θ(d³) recovery — implemented in full over
//!   GF(2^61 − 1), including rational-function interpolation and
//!   root-finding ([`polyfield`] holds the polynomial arithmetic).
//! * [`cost`] — a harness that runs every method (exact and approximate)
//!   on one scenario and reports bits sent, time spent, and accuracy —
//!   the `recon_cost_table` experiment.
//! * [`digest`] — the exact mechanisms' plugs into the workspace-wide
//!   `icd-summary` trait API, so whole-set, hash-set, and char-poly run
//!   end-to-end through the session state machines, not just offline.
//! * [`registry`] — the assembled standard [`icd_summary::SummaryRegistry`]
//!   holding all five mechanisms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod digest;
pub mod hashset;
pub mod poly;
pub mod polyfield;
pub mod registry;
pub mod wholeset;

pub use cost::{CostReport, CostRow};
pub use digest::{CharPolyDigest, HashSetDigest, WholeSetDigest};
pub use poly::{CharPolySketch, PolyError};
pub use registry::{shared_registry, standard_registry};
