//! Cross-method reconciliation cost measurement.
//!
//! §5.1 and Table 4(c) make quantitative claims about the tradeoffs
//! between exact and approximate reconciliation. This module runs every
//! method implemented in the workspace on one controlled scenario and
//! records, per method: bytes on the wire, build time at the sender,
//! reconcile time at the receiver, and the fraction of the true
//! difference recovered. The `recon_cost_table` binary renders the table;
//! integration tests assert the orderings the paper claims.

use std::collections::HashSet;
use std::time::Instant;

use icd_art::{search_differences, ArtParams, ArtSummary, ReconciliationTree, SummaryParams};
use icd_bloom::BloomFilter;
use icd_util::rng::{Rng64, Xoshiro256StarStar};

use crate::hashset::HashSetMessage;
use crate::poly::{key_to_field, reconcile, CharPolySketch};
use crate::wholeset::WholeSetMessage;

/// One scenario: peer A's set, peer B's set, and the true difference.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Keys at peer A (the summarizing side).
    pub a_keys: Vec<u64>,
    /// Keys at peer B (the searching side).
    pub b_keys: Vec<u64>,
    /// The true S_B ∖ S_A.
    pub true_difference: Vec<u64>,
}

impl Scenario {
    /// Builds a scenario with `shared` common keys and `b_only` keys
    /// exclusive to B (the direction all methods recover).
    #[must_use]
    pub fn generate(shared: usize, b_only: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::new(seed);
        let common: Vec<u64> = (0..shared).map(|_| rng.next_u64()).collect();
        let fresh: Vec<u64> = (0..b_only).map(|_| rng.next_u64()).collect();
        let a_keys = common.clone();
        let mut b_keys = common;
        b_keys.extend(fresh.iter().copied());
        let mut true_difference = fresh;
        true_difference.sort_unstable();
        Self {
            a_keys,
            b_keys,
            true_difference,
        }
    }
}

/// Measured costs of one method on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Method name (stable identifiers, used by tests and the table).
    pub method: &'static str,
    /// Bytes peer A put on the wire.
    pub wire_bytes: usize,
    /// Sender-side construction time in nanoseconds.
    pub build_ns: u128,
    /// Receiver-side reconciliation time in nanoseconds.
    pub reconcile_ns: u128,
    /// |found ∩ true| / |true| — recall of the true difference.
    pub accuracy: f64,
    /// Whether anything *not* in the true difference was reported
    /// (should be false for every method here; the invariant all of
    /// §5's machinery preserves).
    pub false_reports: bool,
}

/// The full report for one scenario.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// One row per method.
    pub rows: Vec<CostRow>,
}

impl CostReport {
    /// Finds a row by method name.
    #[must_use]
    pub fn row(&self, method: &str) -> Option<&CostRow> {
        self.rows.iter().find(|r| r.method == method)
    }
}

fn score(found: &[u64], scenario: &Scenario) -> (f64, bool) {
    let truth: HashSet<u64> = scenario.true_difference.iter().copied().collect();
    let hits = found.iter().filter(|k| truth.contains(k)).count();
    let false_reports = found.iter().any(|k| !truth.contains(k));
    let accuracy = if truth.is_empty() {
        1.0
    } else {
        hits as f64 / truth.len() as f64
    };
    (accuracy, false_reports)
}

/// Runs every method on the scenario. `poly_bound` sizes the polynomial
/// sketch (it must be ≥ the true discrepancy to succeed; pass what a
/// deployment would guess).
#[must_use]
pub fn measure_all(scenario: &Scenario, poly_bound: usize) -> CostReport {
    let mut rows = Vec::new();

    // Whole set.
    {
        let t0 = Instant::now();
        let msg = WholeSetMessage::build(&scenario.a_keys);
        let build_ns = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let found = msg.missing_at_sender(&scenario.b_keys);
        let reconcile_ns = t1.elapsed().as_nanos();
        let (accuracy, false_reports) = score(&found, scenario);
        rows.push(CostRow {
            method: "whole-set",
            wire_bytes: msg.wire_size(),
            build_ns,
            reconcile_ns,
            accuracy,
            false_reports,
        });
    }

    // Hash set (16-bit truncated hashes).
    {
        let t0 = Instant::now();
        let msg = HashSetMessage::build(&scenario.a_keys, 16);
        let build_ns = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let found = msg.missing_at_sender(&scenario.b_keys);
        let reconcile_ns = t1.elapsed().as_nanos();
        let (accuracy, false_reports) = score(&found, scenario);
        rows.push(CostRow {
            method: "hash-set-16",
            wire_bytes: msg.wire_size(),
            build_ns,
            reconcile_ns,
            accuracy,
            false_reports,
        });
    }

    // Characteristic polynomial.
    {
        let t0 = Instant::now();
        let sketch = CharPolySketch::build(&scenario.a_keys, poly_bound);
        let build_ns = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let found: Vec<u64> = match reconcile(&sketch, &scenario.b_keys) {
            Ok(diff) => {
                // Map field images back to B's raw keys.
                let images: HashSet<u64> = diff.b_minus_a.into_iter().collect();
                scenario
                    .b_keys
                    .iter()
                    .copied()
                    .filter(|&k| images.contains(&key_to_field(k)))
                    .collect()
            }
            Err(_) => Vec::new(), // bound exceeded → method yields nothing
        };
        let reconcile_ns = t1.elapsed().as_nanos();
        let (accuracy, false_reports) = score(&found, scenario);
        rows.push(CostRow {
            method: "char-poly",
            wire_bytes: sketch.wire_size(),
            build_ns,
            reconcile_ns,
            accuracy,
            false_reports,
        });
    }

    // Bloom filter at the paper's 8 bits/element.
    {
        let t0 = Instant::now();
        let mut filter = BloomFilter::new(8 * scenario.a_keys.len().max(1), 5, 0xB100);
        for &k in &scenario.a_keys {
            filter.insert(k);
        }
        let build_ns = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        let found: Vec<u64> = scenario
            .b_keys
            .iter()
            .copied()
            .filter(|&k| !filter.contains(k))
            .collect();
        let reconcile_ns = t1.elapsed().as_nanos();
        let (accuracy, false_reports) = score(&found, scenario);
        rows.push(CostRow {
            method: "bloom-8bpe",
            wire_bytes: filter.wire_size(),
            build_ns,
            reconcile_ns,
            accuracy,
            false_reports,
        });
    }

    // Approximate reconciliation tree at 8 bits/element, correction 5.
    {
        let params = ArtParams::default();
        let t0 = Instant::now();
        let tree_a = ReconciliationTree::from_keys(params, scenario.a_keys.iter().copied());
        let summary = ArtSummary::build(&tree_a, SummaryParams::standard());
        let build_ns = t0.elapsed().as_nanos();
        // B's tree is maintained incrementally in a deployment; its
        // construction is not part of per-reconciliation time.
        let tree_b = ReconciliationTree::from_keys(params, scenario.b_keys.iter().copied());
        let t1 = Instant::now();
        let out = search_differences(&tree_b, &summary);
        let reconcile_ns = t1.elapsed().as_nanos();
        let (accuracy, false_reports) = score(&out.missing_at_peer, scenario);
        rows.push(CostRow {
            method: "art-8bpe-c5",
            wire_bytes: summary.wire_size(),
            build_ns,
            reconcile_ns,
            accuracy,
            false_reports,
        });
    }

    CostReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> (Scenario, CostReport) {
        let scenario = Scenario::generate(5000, 100, 42);
        let rep = measure_all(&scenario, 128);
        (scenario, rep)
    }

    #[test]
    fn no_method_reports_false_differences() {
        let (_, rep) = report();
        for row in &rep.rows {
            assert!(!row.false_reports, "{} reported false differences", row.method);
        }
    }

    #[test]
    fn exact_methods_are_exact() {
        let (_, rep) = report();
        assert_eq!(rep.row("whole-set").unwrap().accuracy, 1.0);
        assert_eq!(rep.row("char-poly").unwrap().accuracy, 1.0);
    }

    #[test]
    fn approximate_methods_are_close() {
        let (_, rep) = report();
        assert!(rep.row("bloom-8bpe").unwrap().accuracy > 0.9);
        assert!(rep.row("art-8bpe-c5").unwrap().accuracy > 0.7);
    }

    #[test]
    fn wire_cost_ordering_matches_paper() {
        // §5.1/§5.2: poly sketch ≪ Bloom/ART ≪ hash set < whole set.
        let (_, rep) = report();
        let poly = rep.row("char-poly").unwrap().wire_bytes;
        let bloom = rep.row("bloom-8bpe").unwrap().wire_bytes;
        let art = rep.row("art-8bpe-c5").unwrap().wire_bytes;
        let hash = rep.row("hash-set-16").unwrap().wire_bytes;
        let whole = rep.row("whole-set").unwrap().wire_bytes;
        assert!(poly < bloom, "poly {poly} vs bloom {bloom}");
        assert!(bloom <= art * 2, "bloom and ART are the same order");
        assert!(art < hash, "art {art} vs hash {hash}");
        assert!(hash < whole, "hash {hash} vs whole {whole}");
    }

    #[test]
    fn poly_bound_failure_yields_zero_accuracy() {
        let scenario = Scenario::generate(1000, 200, 7);
        let rep = measure_all(&scenario, 16); // d = 200 > 16
        assert_eq!(rep.row("char-poly").unwrap().accuracy, 0.0);
    }

    #[test]
    fn empty_difference_scores_one() {
        let scenario = Scenario::generate(500, 0, 9);
        let rep = measure_all(&scenario, 8);
        for row in &rep.rows {
            assert_eq!(row.accuracy, 1.0, "{} on empty difference", row.method);
        }
    }
}
