//! Sans-I/O session machines: events in, actions out, zero I/O, zero
//! internal time.
//!
//! [`ReceiverSession`]/[`SenderSession`] already keep protocol logic
//! free of transport concerns, but they still traffic in decoded
//! [`Message`] values — every driver re-implements framing, byte
//! accounting, and completion detection around them. This module closes
//! that gap with the classic sans-I/O shape: a machine consumes
//! [`SessionEvent`]s (`PeerConnected`, `FrameReceived`, `TickElapsed`)
//! and emits [`SessionAction`]s (`SendFrame`, `SymbolDecoded`,
//! `Completed`, ...). Every `SendFrame` carries the *exact* bytes
//! `icd-wire`'s `write_frame_buf` produces — length prefix included —
//! so whatever the driver sums is by construction the true wire cost.
//!
//! Time never originates inside a machine: the driver's clock arrives
//! via [`SessionEvent::TickElapsed`], and the optional idle timeout is
//! judged purely against those driver-provided ticks. The same machine
//! therefore runs unchanged under the discrete-event overlay engine
//! (simulated ticks), the blocking TCP drivers below (wall-clock ticks,
//! or none), and the in-memory [`FramePump`] used by tests.
//!
//! Drivers in this workspace:
//! * `icd-overlay`'s session links pump one frame per link send slot,
//!   applying rate/latency/loss to real framed byte lengths;
//! * [`drive_receiver`]/[`drive_sender`] run the machines over any
//!   blocking `Read + Write` stream (the `tcp_reconcile` example);
//! * [`FramePump`] interleaves two machines over in-memory queues, one
//!   frame per direction per step, mirroring `SessionPump`.

use bytes::Bytes;
use icd_wire::framing::{read_frame_bytes, write_frame_buf, FrameError, FrameLimit};
use icd_wire::message::FRAME_PREFIX_BYTES;
use icd_wire::{Message, WireError};

use crate::policy::TransferPlan;
use crate::session::{
    PumpStep, ReceiverSession, SenderSession, SessionConfig, SessionError,
};
use crate::summary::SummaryRegistry;
use crate::working_set::WorkingSet;

/// An input to a session machine. Drivers translate their world —
/// sockets, simulated links, test queues — into these three events.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// The transport to the peer is up; the machine may start talking.
    PeerConnected,
    /// One complete frame arrived: u32 length prefix plus encoded body,
    /// exactly as read off the wire.
    FrameReceived(Bytes),
    /// The driver's clock advanced to `now` (any monotonic unit — the
    /// machine only compares differences against its idle timeout).
    TickElapsed(u64),
}

/// An output from a session machine. The driver executes these; the
/// machine never performs I/O itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionAction {
    /// Transmit these bytes to the peer verbatim. The buffer is a whole
    /// frame (prefix + body), so `frame.len()` *is* the wire cost.
    SendFrame(Bytes),
    /// A new distinct symbol with this id entered the working set.
    SymbolDecoded(u64),
    /// The session finished normally. For a receiver, `gained` is the
    /// count of new distinct symbols; for a sender, the symbols it
    /// streamed (the `End` frame's count).
    Completed {
        /// Symbols gained (receiver) or streamed (sender).
        gained: u64,
    },
    /// Admission control ended the session before any transfer.
    Rejected,
    /// The idle timeout elapsed with the session unfinished.
    TimedOut,
}

/// Failures surfaced by a machine: malformed frames, wire decode
/// errors, or protocol violations from the underlying session.
#[derive(Debug)]
pub enum MachineError {
    /// The driver handed over bytes that are not one whole well-formed
    /// frame, or misused the event API (e.g. a frame before
    /// `PeerConnected`).
    Frame(&'static str),
    /// The frame body failed to decode.
    Wire(WireError),
    /// The session state machine rejected the message.
    Session(SessionError),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Frame(why) => write!(f, "bad frame: {why}"),
            Self::Wire(e) => write!(f, "wire decode failed: {e}"),
            Self::Session(e) => write!(f, "session error: {e}"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<SessionError> for MachineError {
    fn from(e: SessionError) -> Self {
        Self::Session(e)
    }
}

/// Splits a raw frame into its message, validating that the buffer is
/// exactly one frame whose prefix agrees with its length. The body
/// decodes as a view of the buffer (no copy for data-plane payloads).
fn decode_frame(frame: &Bytes) -> Result<Message, MachineError> {
    if frame.len() < FRAME_PREFIX_BYTES {
        return Err(MachineError::Frame("frame shorter than its length prefix"));
    }
    let declared = u32::from_le_bytes(
        frame[..FRAME_PREFIX_BYTES]
            .try_into()
            .expect("four prefix bytes"),
    ) as usize;
    if declared != frame.len() - FRAME_PREFIX_BYTES {
        return Err(MachineError::Frame("length prefix disagrees with frame size"));
    }
    Message::decode_from(&frame.slice(FRAME_PREFIX_BYTES..)).map_err(MachineError::Wire)
}

/// Shared non-protocol state: connection flag, driver clock, idle
/// timeout, terminal reporting.
#[derive(Debug)]
struct MachineClock {
    connected: bool,
    now: u64,
    last_activity: u64,
    idle_timeout: Option<u64>,
    timed_out: bool,
    reported: bool,
    scratch: Vec<u8>,
}

impl MachineClock {
    fn new(idle_timeout: Option<u64>) -> Self {
        Self {
            connected: false,
            now: 0,
            last_activity: 0,
            idle_timeout,
            timed_out: false,
            reported: false,
            scratch: Vec::new(),
        }
    }

    fn touch(&mut self) {
        self.last_activity = self.now;
    }

    /// Advances the driver clock; returns true when the idle timeout
    /// fires (at most once).
    fn tick(&mut self, now: u64, finished: bool) -> bool {
        self.now = self.now.max(now);
        match self.idle_timeout {
            Some(timeout)
                if !finished
                    && !self.timed_out
                    && self.now.saturating_sub(self.last_activity) >= timeout =>
            {
                self.timed_out = true;
                true
            }
            _ => false,
        }
    }

    fn encode(&mut self, msg: &Message) -> Result<Bytes, MachineError> {
        let mut out = Vec::with_capacity(msg.frame_len());
        write_frame_buf(&mut out, msg, &mut self.scratch)
            .map_err(|_| MachineError::Frame("message exceeds frame size bounds"))?;
        Ok(Bytes::from(out))
    }
}

/// Receiver-side sans-I/O machine: owns its [`WorkingSet`] and a
/// [`ReceiverSession`], exposing only the event/action surface.
#[derive(Debug)]
pub struct ReceiverMachine {
    session: ReceiverSession,
    working: WorkingSet,
    opening: Vec<Message>,
    clock: MachineClock,
}

impl ReceiverMachine {
    /// Builds the machine over a working set. Nothing is transmitted
    /// until the driver delivers [`SessionEvent::PeerConnected`].
    #[must_use]
    pub fn new(working: WorkingSet, config: SessionConfig) -> Self {
        let (session, opening) = ReceiverSession::start(&working, config);
        Self {
            session,
            working,
            opening,
            clock: MachineClock::new(None),
        }
    }

    /// Sets an idle timeout in driver-clock units: if that much time
    /// passes (per `TickElapsed`) with no connection or frame activity
    /// while the session is unfinished, the machine emits
    /// [`SessionAction::TimedOut`] once and goes terminal.
    #[must_use]
    pub fn with_idle_timeout(mut self, ticks: u64) -> Self {
        self.clock.idle_timeout = Some(ticks);
        self
    }

    /// Feeds one event; returns the actions for the driver to execute,
    /// in order.
    pub fn handle(&mut self, event: SessionEvent) -> Result<Vec<SessionAction>, MachineError> {
        let mut actions = Vec::new();
        match event {
            SessionEvent::PeerConnected => {
                if self.clock.connected {
                    return Err(MachineError::Frame("duplicate PeerConnected"));
                }
                self.clock.connected = true;
                self.clock.touch();
                for msg in std::mem::take(&mut self.opening) {
                    let frame = self.clock.encode(&msg)?;
                    actions.push(SessionAction::SendFrame(frame));
                }
            }
            SessionEvent::FrameReceived(frame) => {
                if !self.clock.connected {
                    return Err(MachineError::Frame("frame before PeerConnected"));
                }
                self.clock.touch();
                let msg = decode_frame(&frame)?;
                let replies = self.session.on_message(&mut self.working, &msg)?;
                for reply in &replies {
                    let frame = self.clock.encode(reply)?;
                    actions.push(SessionAction::SendFrame(frame));
                }
                for id in self.session.take_recovered() {
                    actions.push(SessionAction::SymbolDecoded(id));
                }
                if !self.clock.reported {
                    if self.session.is_done() {
                        self.clock.reported = true;
                        actions.push(SessionAction::Completed {
                            gained: self.session.gained(),
                        });
                    } else if self.session.was_rejected() {
                        self.clock.reported = true;
                        actions.push(SessionAction::Rejected);
                    }
                }
            }
            SessionEvent::TickElapsed(now) => {
                if self.clock.tick(now, self.is_finished()) {
                    actions.push(SessionAction::TimedOut);
                }
            }
        }
        Ok(actions)
    }

    /// The machine has reached a terminal state (done, rejected, or
    /// timed out) and will take no further protocol steps.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.session.is_done() || self.session.was_rejected() || self.clock.timed_out
    }

    /// True when the stream finished normally.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.session.is_done()
    }

    /// True when admission control rejected the peer.
    #[must_use]
    pub fn was_rejected(&self) -> bool {
        self.session.was_rejected()
    }

    /// True when the idle timeout fired.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.clock.timed_out
    }

    /// New distinct symbols gained so far.
    #[must_use]
    pub fn gained(&self) -> u64 {
        self.session.gained()
    }

    /// The plan chosen after the sketch exchange (None before that).
    #[must_use]
    pub fn plan(&self) -> Option<TransferPlan> {
        self.session.plan()
    }

    /// The working set as it stands (symbols accrue during streaming).
    #[must_use]
    pub fn working(&self) -> &WorkingSet {
        &self.working
    }

    /// Consumes the machine, returning the final working set.
    #[must_use]
    pub fn into_working(self) -> WorkingSet {
        self.working
    }

    /// Consumes a (possibly mid-flight) machine and builds a fresh one
    /// over its *current* working set — the §3 re-handshake a resuming
    /// dialer performs after a cut connection. The new session's opening
    /// sketch summarizes everything decoded so far, so symbols that
    /// landed before the cut are advertised as held and never
    /// re-requested; the caller supplies a `config` whose request count
    /// reflects what is still missing. All clock state (idle timeout,
    /// terminal flags) is reset: resumption is a new connection.
    #[must_use]
    pub fn into_resumed(self, config: SessionConfig) -> Self {
        Self::new(self.working, config)
    }
}

/// Sender-side sans-I/O machine over a [`SenderSession`].
#[derive(Debug)]
pub struct SenderMachine {
    session: SenderSession,
    clock: MachineClock,
    streamed: u64,
}

impl SenderMachine {
    /// Creates the sender machine over a snapshot of its working set,
    /// with the standard registry.
    #[must_use]
    pub fn new(working: WorkingSet, seed: u64) -> Self {
        Self {
            session: SenderSession::new(working, seed),
            clock: MachineClock::new(None),
            streamed: 0,
        }
    }

    /// As [`SenderMachine::new`] with an explicit summary registry.
    #[must_use]
    pub fn with_registry(
        working: WorkingSet,
        seed: u64,
        registry: std::sync::Arc<SummaryRegistry>,
    ) -> Self {
        Self {
            session: SenderSession::with_registry(working, seed, registry),
            clock: MachineClock::new(None),
            streamed: 0,
        }
    }

    /// Sets an idle timeout (see [`ReceiverMachine::with_idle_timeout`]).
    #[must_use]
    pub fn with_idle_timeout(mut self, ticks: u64) -> Self {
        self.clock.idle_timeout = Some(ticks);
        self
    }

    /// Feeds one event; returns the actions for the driver to execute.
    /// The sender speaks only in response to the receiver, so
    /// `PeerConnected` produces no frames.
    pub fn handle(&mut self, event: SessionEvent) -> Result<Vec<SessionAction>, MachineError> {
        let mut actions = Vec::new();
        match event {
            SessionEvent::PeerConnected => {
                if self.clock.connected {
                    return Err(MachineError::Frame("duplicate PeerConnected"));
                }
                self.clock.connected = true;
                self.clock.touch();
            }
            SessionEvent::FrameReceived(frame) => {
                if !self.clock.connected {
                    return Err(MachineError::Frame("frame before PeerConnected"));
                }
                self.clock.touch();
                let msg = decode_frame(&frame)?;
                let replies = self.session.on_message(&msg)?;
                for reply in &replies {
                    if let Message::End { sent } = reply {
                        self.streamed = *sent;
                    }
                    let frame = self.clock.encode(reply)?;
                    actions.push(SessionAction::SendFrame(frame));
                }
                if self.session.is_done() && !self.clock.reported {
                    self.clock.reported = true;
                    actions.push(SessionAction::Completed {
                        gained: self.streamed,
                    });
                }
            }
            SessionEvent::TickElapsed(now) => {
                if self.clock.tick(now, self.is_finished()) {
                    actions.push(SessionAction::TimedOut);
                }
            }
        }
        Ok(actions)
    }

    /// The machine has reached a terminal state.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.session.is_done() || self.clock.timed_out
    }

    /// True when the sender has answered the request (or been rejected).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.session.is_done()
    }

    /// True when the idle timeout fired.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.clock.timed_out
    }

    /// Symbols streamed in answer to the request (the `End` count).
    #[must_use]
    pub fn streamed(&self) -> u64 {
        self.streamed
    }
}

/// In-memory frame-level driver for one receiver/sender machine pair:
/// the sans-I/O analogue of [`crate::SessionPump`]. Each
/// [`FramePump::step`] moves at most one frame in each direction and
/// never blocks, so schedulers can interleave many pumps. Byte counters
/// sum the exact framed lengths crossing each direction.
#[derive(Debug, Default)]
pub struct FramePump {
    to_sender: std::collections::VecDeque<Bytes>,
    to_receiver: std::collections::VecDeque<Bytes>,
    bytes_to_sender: u64,
    bytes_to_receiver: u64,
}

impl FramePump {
    /// Creates an empty pump; call [`FramePump::start`] to connect the
    /// machines.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Delivers `PeerConnected` to both machines and queues the
    /// receiver's opening frames. Non-transport actions are appended to
    /// `actions`.
    pub fn start(
        &mut self,
        receiver: &mut ReceiverMachine,
        sender: &mut SenderMachine,
        actions: &mut Vec<SessionAction>,
    ) -> Result<(), MachineError> {
        self.route(receiver.handle(SessionEvent::PeerConnected)?, true, actions);
        self.route(sender.handle(SessionEvent::PeerConnected)?, false, actions);
        Ok(())
    }

    fn route(&mut self, from: Vec<SessionAction>, from_receiver: bool, sink: &mut Vec<SessionAction>) {
        for action in from {
            match action {
                SessionAction::SendFrame(frame) => {
                    if from_receiver {
                        self.bytes_to_sender += frame.len() as u64;
                        self.to_sender.push_back(frame);
                    } else {
                        self.bytes_to_receiver += frame.len() as u64;
                        self.to_receiver.push_back(frame);
                    }
                }
                other => sink.push(other),
            }
        }
    }

    /// True when no frame is queued in either direction.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.to_sender.is_empty() && self.to_receiver.is_empty()
    }

    /// Total framed bytes delivered so far `(to_sender, to_receiver)`.
    #[must_use]
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.bytes_to_sender, self.bytes_to_receiver)
    }

    /// Delivers at most one queued frame to each machine. Non-transport
    /// actions are appended to `actions`; frames are re-queued toward
    /// the opposite side.
    pub fn step(
        &mut self,
        receiver: &mut ReceiverMachine,
        sender: &mut SenderMachine,
        actions: &mut Vec<SessionAction>,
    ) -> Result<PumpStep, MachineError> {
        let mut progressed = false;
        if let Some(frame) = self.to_sender.pop_front() {
            let out = sender.handle(SessionEvent::FrameReceived(frame))?;
            self.route(out, false, actions);
            progressed = true;
        }
        if let Some(frame) = self.to_receiver.pop_front() {
            let out = receiver.handle(SessionEvent::FrameReceived(frame))?;
            self.route(out, true, actions);
            progressed = true;
        }
        Ok(if progressed {
            PumpStep::Progressed
        } else {
            PumpStep::Idle
        })
    }

    /// Drives both machines to quiescence, returning all non-transport
    /// actions in delivery order.
    pub fn run(
        &mut self,
        receiver: &mut ReceiverMachine,
        sender: &mut SenderMachine,
    ) -> Result<Vec<SessionAction>, MachineError> {
        let mut actions = Vec::new();
        self.start(receiver, sender, &mut actions)?;
        while self.step(receiver, sender, &mut actions)? == PumpStep::Progressed {}
        Ok(actions)
    }
}

/// Wire-exact byte counters a blocking driver accumulates: every frame
/// written or read, prefix included, split by plane (data = encoded or
/// recoded symbol frames, control = everything else).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// Framed bytes of control traffic (sketches, summary, request, end).
    pub control_bytes: u64,
    /// Framed bytes of data traffic (encoded/recoded symbol frames).
    pub data_bytes: u64,
    /// Total frames moved in either direction.
    pub frames: u64,
}

impl WireStats {
    /// Books one frame (either direction): the whole framed length,
    /// classified data vs control by its message tag. Public so custom
    /// drive loops (e.g. a daemon's budgeted serve path) book frames
    /// exactly like the built-in drivers.
    pub fn count(&mut self, frame: &Bytes) {
        self.frames += 1;
        let data = frame
            .get(FRAME_PREFIX_BYTES)
            .is_some_and(|&tag| Message::is_data_tag(tag));
        if data {
            self.data_bytes += frame.len() as u64;
        } else {
            self.control_bytes += frame.len() as u64;
        }
    }

    /// Total framed bytes moved.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.control_bytes + self.data_bytes
    }
}

/// Counters accumulate across attempts: a retrying dialer sums the
/// partial stats of every severed attempt into the final report, so
/// wasted wire bytes stay visible instead of vanishing with the failed
/// connection.
impl std::ops::AddAssign for WireStats {
    fn add_assign(&mut self, other: Self) {
        self.control_bytes += other.control_bytes;
        self.data_bytes += other.data_bytes;
        self.frames += other.frames;
    }
}

/// Errors from the blocking stream drivers.
#[derive(Debug)]
pub enum DriveError {
    /// The transport failed (I/O error, oversized, truncated or garbled
    /// frame).
    Transport(FrameError),
    /// The machine rejected an event.
    Machine(MachineError),
    /// The peer closed the stream before the session finished. Carries
    /// the counters for the frames that did cross, so a daemon can book
    /// partial traffic before tearing the connection down.
    PeerClosed {
        /// Wire bytes moved before the premature close.
        stats: WireStats,
    },
    /// A configured read timeout elapsed before the session finished —
    /// the peer is alive-but-silent or gone without a FIN. The stream
    /// must be discarded (a partial frame may be in flight).
    ReadTimeout {
        /// Wire bytes moved before the timeout.
        stats: WireStats,
    },
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Transport(e) => write!(f, "transport: {e}"),
            Self::Machine(e) => write!(f, "machine: {e}"),
            Self::PeerClosed { stats } => write!(
                f,
                "peer closed mid-session after {} bytes in {} frames",
                stats.total(),
                stats.frames
            ),
            Self::ReadTimeout { stats } => write!(
                f,
                "read timeout mid-session after {} bytes in {} frames",
                stats.total(),
                stats.frames
            ),
        }
    }
}

impl std::error::Error for DriveError {}

impl From<FrameError> for DriveError {
    fn from(e: FrameError) -> Self {
        Self::Transport(e)
    }
}

impl From<MachineError> for DriveError {
    fn from(e: MachineError) -> Self {
        Self::Machine(e)
    }
}

fn execute<S: std::io::Write>(
    actions: &[SessionAction],
    stream: &mut S,
    stats: &mut WireStats,
) -> Result<(), DriveError> {
    for action in actions {
        if let SessionAction::SendFrame(frame) = action {
            stats.count(frame);
            // Through `FrameError::from`, so a write deadline
            // (WouldBlock/TimedOut) classifies as the transient
            // `FrameError::TimedOut` a retry policy may redial on,
            // not an opaque I/O failure.
            stream.write_all(frame).map_err(FrameError::from)?;
        }
    }
    Ok(())
}

/// Maps a mid-session read failure to the typed driver error. The drive
/// loops only read while the machine is unfinished, so `Closed` here is
/// always a *premature* close, never a normal shutdown.
fn read_failure(e: FrameError, stats: WireStats) -> DriveError {
    match e {
        FrameError::Closed => DriveError::PeerClosed { stats },
        FrameError::TimedOut => DriveError::ReadTimeout { stats },
        other => DriveError::Transport(other),
    }
}

/// Runs a [`ReceiverMachine`] over a blocking stream until the session
/// finishes. Returns wire-exact byte counters for every frame that
/// crossed the stream in either direction. A peer that closes or goes
/// silent (with a socket read timeout set) before the session finishes
/// yields [`DriveError::PeerClosed`] / [`DriveError::ReadTimeout`]
/// carrying the partial counters.
pub fn drive_receiver<S: std::io::Read + std::io::Write>(
    machine: &mut ReceiverMachine,
    stream: &mut S,
    limit: FrameLimit,
) -> Result<WireStats, DriveError> {
    drive_receiver_with(machine, stream, limit, |_, _| {})
}

/// [`drive_receiver`] with a per-action observer: after each batch of
/// reply frames is written, `observe` sees every action the machine
/// emitted alongside the machine itself. A daemon uses this to ingest
/// [`SessionAction::SymbolDecoded`] ids into a shared working set while
/// the session is still running, so parallel sessions benefit from each
/// other's progress.
pub fn drive_receiver_with<S, F>(
    machine: &mut ReceiverMachine,
    stream: &mut S,
    limit: FrameLimit,
    mut observe: F,
) -> Result<WireStats, DriveError>
where
    S: std::io::Read + std::io::Write,
    F: FnMut(&SessionAction, &ReceiverMachine),
{
    let mut stats = WireStats::default();
    let actions = machine.handle(SessionEvent::PeerConnected)?;
    execute(&actions, stream, &mut stats)?;
    for action in &actions {
        observe(action, machine);
    }
    while !machine.is_finished() {
        let frame = match read_frame_bytes(stream, limit) {
            Ok(frame) => frame,
            Err(e) => return Err(read_failure(e, stats)),
        };
        stats.count(&frame);
        let actions = machine.handle(SessionEvent::FrameReceived(frame))?;
        execute(&actions, stream, &mut stats)?;
        for action in &actions {
            observe(action, machine);
        }
    }
    Ok(stats)
}

/// Runs a [`SenderMachine`] over a blocking stream: feed inbound frames,
/// write replies, stop when the session completes. Premature peer close
/// or read timeout becomes a typed [`DriveError`] like the receiver
/// side's.
pub fn drive_sender<S: std::io::Read + std::io::Write>(
    machine: &mut SenderMachine,
    stream: &mut S,
    limit: FrameLimit,
) -> Result<WireStats, DriveError> {
    let mut stats = WireStats::default();
    execute(
        &machine.handle(SessionEvent::PeerConnected)?,
        stream,
        &mut stats,
    )?;
    while !machine.is_finished() {
        let frame = match read_frame_bytes(stream, limit) {
            Ok(frame) => frame,
            Err(e) => return Err(read_failure(e, stats)),
        };
        stats.count(&frame);
        execute(
            &machine.handle(SessionEvent::FrameReceived(frame))?,
            stream,
            &mut stats,
        )?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use icd_fountain::EncodedSymbol;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    fn sym(id: u64) -> EncodedSymbol {
        EncodedSymbol {
            id,
            payload: Bytes::from(id.to_le_bytes().to_vec()),
        }
    }

    fn working(ids: &[u64]) -> WorkingSet {
        WorkingSet::from_symbols(ids.iter().map(|&id| sym(id)))
    }

    fn ids(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    /// Build the canonical overlapping scenario: receiver has
    /// shared ∪ receiver-extra, sender shared ∪ sender-extra.
    fn machines(request: u64) -> (ReceiverMachine, SenderMachine, usize) {
        let shared = ids(600, 1);
        let fresh = ids(250, 2);
        let recv_ws = working(&shared);
        let mut sender_ids = shared.clone();
        sender_ids.extend(fresh.iter().copied());
        let send_ws = working(&sender_ids);
        let receiver =
            ReceiverMachine::new(recv_ws, SessionConfig::new().with_request(request));
        let sender = SenderMachine::new(send_ws, 7);
        (receiver, sender, fresh.len())
    }

    #[test]
    fn machines_complete_a_transfer_with_wire_exact_bytes() {
        let (mut receiver, mut sender, fresh) = machines(1000);
        let mut pump = FramePump::new();
        let actions = pump.run(&mut receiver, &mut sender).expect("run");
        assert!(receiver.is_done());
        assert!(sender.is_done());
        let decoded: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                SessionAction::SymbolDecoded(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(decoded.len() as u64, receiver.gained());
        assert!(receiver.gained() as usize > fresh * 9 / 10);
        // Every decoded id is genuinely in the final working set.
        for id in &decoded {
            assert!(receiver.working().contains(*id));
        }
        // Completion actions fired exactly once per side.
        let completions = actions
            .iter()
            .filter(|a| matches!(a, SessionAction::Completed { .. }))
            .count();
        assert_eq!(completions, 2);
        // Pump byte counters are sums of whole frame lengths, which are
        // at least prefix + tag + something per frame.
        let (to_sender, to_receiver) = pump.wire_bytes();
        assert!(to_sender > 0 && to_receiver > 0);
    }

    #[test]
    fn machine_pump_agrees_with_session_pump_byte_for_byte() {
        // The same scenario through the legacy message-level pump and
        // the frame-level machine pump must exchange identical bytes.
        let shared = ids(500, 11);
        let fresh = ids(200, 12);
        let mut sender_ids = shared.clone();
        sender_ids.extend(fresh.iter().copied());
        let config = SessionConfig::new().with_request(500);

        // Legacy: count encoded frame lengths via the observer.
        let mut recv_ws = working(&shared);
        let send_ws = working(&sender_ids);
        let (mut recv, opening) =
            crate::session::ReceiverSession::start(&recv_ws, config.clone());
        let mut send = crate::session::SenderSession::new(send_ws, 7);
        let mut legacy_bytes = 0u64;
        crate::session::pump_observed(
            &mut recv,
            &mut recv_ws,
            &mut send,
            opening,
            |msg| legacy_bytes += msg.frame_len() as u64,
        )
        .expect("legacy pump");

        // Machines: the pump counters sum actual frame buffers.
        let (mut receiver, mut sender) = (
            ReceiverMachine::new(working(&shared), config),
            SenderMachine::new(working(&sender_ids), 7),
        );
        let mut pump = FramePump::new();
        pump.run(&mut receiver, &mut sender).expect("machine pump");
        let (to_sender, to_receiver) = pump.wire_bytes();
        assert_eq!(legacy_bytes, to_sender + to_receiver);
        assert_eq!(recv.gained(), receiver.gained());
        assert_eq!(recv_ws.sorted_ids(), receiver.working().sorted_ids());
    }

    #[test]
    fn rejection_surfaces_as_an_action() {
        let shared = ids(400, 21);
        let mut receiver =
            ReceiverMachine::new(working(&shared), SessionConfig::default());
        let mut sender = SenderMachine::new(working(&shared), 3);
        let mut pump = FramePump::new();
        let actions = pump.run(&mut receiver, &mut sender).expect("run");
        assert!(receiver.was_rejected());
        assert!(actions.contains(&SessionAction::Rejected));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, SessionAction::SymbolDecoded(_))));
    }

    #[test]
    fn idle_timeout_is_driver_clocked() {
        let (receiver, _sender, _) = machines(10);
        let mut receiver = receiver.with_idle_timeout(5);
        let connect = receiver.handle(SessionEvent::PeerConnected).expect("connect");
        assert!(matches!(connect[0], SessionAction::SendFrame(_)));
        // Time only moves when the driver says so.
        assert!(receiver
            .handle(SessionEvent::TickElapsed(4))
            .expect("tick")
            .is_empty());
        let fired = receiver.handle(SessionEvent::TickElapsed(5)).expect("tick");
        assert_eq!(fired, vec![SessionAction::TimedOut]);
        assert!(receiver.timed_out() && receiver.is_finished());
        // The timeout reports once, not every tick.
        assert!(receiver
            .handle(SessionEvent::TickElapsed(100))
            .expect("tick")
            .is_empty());
    }

    #[test]
    fn event_misuse_is_an_error_not_a_panic() {
        let (mut receiver, mut sender, _) = machines(10);
        let frame = Bytes::from_static(&[1, 0, 0, 0, 0x7F]);
        assert!(matches!(
            receiver.handle(SessionEvent::FrameReceived(frame.clone())),
            Err(MachineError::Frame(_))
        ));
        sender.handle(SessionEvent::PeerConnected).expect("connect");
        assert!(matches!(
            sender.handle(SessionEvent::PeerConnected),
            Err(MachineError::Frame(_))
        ));
        // A frame whose prefix lies about its length is rejected.
        receiver.handle(SessionEvent::PeerConnected).expect("connect");
        let lying = Bytes::from_static(&[9, 0, 0, 0, 0x7F]);
        assert!(matches!(
            receiver.handle(SessionEvent::FrameReceived(lying)),
            Err(MachineError::Frame(_))
        ));
        // Truncated-at-prefix frames too.
        let stub = Bytes::from_static(&[1, 0]);
        assert!(matches!(
            receiver.handle(SessionEvent::FrameReceived(stub)),
            Err(MachineError::Frame(_))
        ));
    }

    // An in-memory duplex "socket": two Vec-backed half-channels.
    // Exercises drive_receiver/drive_sender — the exact code the real
    // daemon runs — without touching the network.
    struct Half {
        incoming: std::sync::mpsc::Receiver<Vec<u8>>,
        outgoing: std::sync::mpsc::Sender<Vec<u8>>,
        residue: Vec<u8>,
    }
    impl std::io::Read for Half {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            while self.residue.is_empty() {
                match self.incoming.recv() {
                    Ok(chunk) => self.residue = chunk,
                    Err(_) => return Ok(0),
                }
            }
            let n = buf.len().min(self.residue.len());
            buf[..n].copy_from_slice(&self.residue[..n]);
            self.residue.drain(..n);
            Ok(n)
        }
    }
    impl std::io::Write for Half {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            // A send after the peer hung up is a closed stream.
            self.outgoing
                .send(buf.to_vec())
                .map_err(|_| std::io::Error::from(std::io::ErrorKind::BrokenPipe))?;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn duplex() -> (Half, Half) {
        let (a_tx, b_rx) = std::sync::mpsc::channel();
        let (b_tx, a_rx) = std::sync::mpsc::channel();
        (
            Half {
                incoming: a_rx,
                outgoing: a_tx,
                residue: Vec::new(),
            },
            Half {
                incoming: b_rx,
                outgoing: b_tx,
                residue: Vec::new(),
            },
        )
    }

    #[test]
    fn blocking_drivers_run_the_same_machines_over_a_duplex_pipe() {
        let (mut receiver_half, mut sender_half) = duplex();

        let (mut receiver, mut sender, fresh) = machines(1000);
        let sender_thread = std::thread::spawn(move || {
            let stats = drive_sender(&mut sender, &mut sender_half, FrameLimit::default())
                .expect("sender drive");
            (sender, stats)
        });
        let recv_stats = drive_receiver(&mut receiver, &mut receiver_half, FrameLimit::default())
            .expect("receiver drive");
        drop(receiver_half);
        let (sender, send_stats) = sender_thread.join().expect("join");

        assert!(receiver.is_done() && sender.is_done());
        assert!(receiver.gained() as usize > fresh * 9 / 10);
        // Both endpoints saw the same frames, so the counters agree.
        assert_eq!(recv_stats, send_stats);
        assert!(recv_stats.data_bytes > recv_stats.control_bytes);
        assert!(recv_stats.control_bytes > 0);
    }

    #[test]
    fn observer_sees_decoded_symbols_as_they_land() {
        let (mut receiver_half, mut sender_half) = duplex();
        let (mut receiver, mut sender, _) = machines(1000);
        let sender_thread = std::thread::spawn(move || {
            drive_sender(&mut sender, &mut sender_half, FrameLimit::default()).expect("sender")
        });
        let mut seen = Vec::new();
        drive_receiver_with(
            &mut receiver,
            &mut receiver_half,
            FrameLimit::default(),
            |action, machine| {
                if let SessionAction::SymbolDecoded(id) = action {
                    // The machine's working set already holds the symbol
                    // when the observer fires — live ingestion is sound.
                    assert!(machine.working().contains(*id));
                    seen.push(*id);
                }
            },
        )
        .expect("receiver");
        drop(receiver_half);
        sender_thread.join().expect("join");
        assert_eq!(seen.len() as u64, receiver.gained());
        assert!(!seen.is_empty());
    }

    #[test]
    fn peer_eof_mid_session_is_a_typed_error() {
        // A stream that accepts the opening sketch then reports EOF:
        // the driver must not report success for an unfinished session.
        struct DeadAfterWrite;
        impl std::io::Read for DeadAfterWrite {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Ok(0)
            }
        }
        impl std::io::Write for DeadAfterWrite {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (mut receiver, mut sender, _) = machines(10);
        match drive_receiver(&mut receiver, &mut DeadAfterWrite, FrameLimit::default()) {
            Err(DriveError::PeerClosed { stats }) => {
                // The opening sketch frame was still booked.
                assert_eq!(stats.frames, 1);
                assert!(stats.control_bytes > 0);
            }
            other => panic!("expected PeerClosed, got {other:?}"),
        }
        assert!(!receiver.is_finished());
        // The sender side never even saw a first frame: zero stats.
        match drive_sender(&mut sender, &mut DeadAfterWrite, FrameLimit::default()) {
            Err(DriveError::PeerClosed { stats }) => assert_eq!(stats.total(), 0),
            other => panic!("expected PeerClosed, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_mid_session_is_transport_error() {
        // The peer dies three bytes into an eight-byte frame body.
        struct TruncatedFrame {
            data: std::io::Cursor<Vec<u8>>,
        }
        impl std::io::Read for TruncatedFrame {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                std::io::Read::read(&mut self.data, buf)
            }
        }
        impl std::io::Write for TruncatedFrame {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(&[0u8; 3]);
        let mut stream = TruncatedFrame {
            data: std::io::Cursor::new(wire),
        };
        let (mut receiver, _, _) = machines(10);
        assert!(matches!(
            drive_receiver(&mut receiver, &mut stream, FrameLimit::default()),
            Err(DriveError::Transport(FrameError::Truncated { needed: 5, got: 7 }))
        ));
    }

    #[test]
    fn read_timeout_mid_session_is_a_typed_error() {
        // A socket with a read timeout set surfaces WouldBlock/TimedOut;
        // the driver maps it to ReadTimeout with the partial counters.
        struct SilentPeer;
        impl std::io::Read for SilentPeer {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        impl std::io::Write for SilentPeer {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (mut receiver, _, _) = machines(10);
        match drive_receiver(&mut receiver, &mut SilentPeer, FrameLimit::default()) {
            Err(DriveError::ReadTimeout { stats }) => assert_eq!(stats.frames, 1),
            other => panic!("expected ReadTimeout, got {other:?}"),
        }
    }

    #[test]
    fn write_deadline_surfaces_as_transient_transport_error() {
        // A socket whose *write* deadline fires: the opening sketch
        // cannot be sent. The driver must classify it as the transient
        // `FrameError::TimedOut`, not an opaque I/O failure, so retry
        // policies treat stalled writes like stalled reads.
        struct FullBuffer;
        impl std::io::Read for FullBuffer {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Ok(0)
            }
        }
        impl std::io::Write for FullBuffer {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (mut receiver, _, _) = machines(10);
        match drive_receiver(&mut receiver, &mut FullBuffer, FrameLimit::default()) {
            Err(DriveError::Transport(e)) => {
                assert!(matches!(e, FrameError::TimedOut));
                assert!(e.is_transient());
            }
            other => panic!("expected Transport(TimedOut), got {other:?}"),
        }
    }

    #[test]
    fn resumed_machine_advertises_prior_progress_and_never_double_counts() {
        // Run a session partway, cut it, resume with a fresh handshake
        // over the now-larger set: nothing decoded before the cut may be
        // gained again afterward.
        let (mut receiver, mut sender, fresh) = machines(1000);
        let mut pump = FramePump::new();
        let mut actions = Vec::new();
        pump.start(&mut receiver, &mut sender, &mut actions).expect("start");
        // Pump only a handful of frames — the "connection" then dies.
        for _ in 0..12 {
            if pump.step(&mut receiver, &mut sender, &mut actions).expect("step") == PumpStep::Idle
            {
                break;
            }
        }
        let first: std::collections::HashSet<u64> = actions
            .iter()
            .filter_map(|a| match a {
                SessionAction::SymbolDecoded(id) => Some(*id),
                _ => None,
            })
            .collect();
        let gained_before = receiver.gained();
        assert_eq!(first.len() as u64, gained_before);
        let held_at_cut = receiver.working().len();

        // Resume: re-handshake with a request for what is still missing,
        // against a fresh sender over the same inventory (the serving
        // daemon rebuilds its machine per connection too).
        let missing = 1000 - gained_before;
        let mut resumed =
            receiver.into_resumed(SessionConfig::new().with_request(missing).with_seed(99));
        assert_eq!(resumed.working().len(), held_at_cut);
        let sender_ids: Vec<u64> = {
            let mut v = ids(600, 1);
            v.extend(ids(250, 2));
            v
        };
        let mut sender2 = SenderMachine::new(working(&sender_ids), 8);
        let mut pump2 = FramePump::new();
        let actions2 = pump2.run(&mut resumed, &mut sender2).expect("resumed run");
        assert!(resumed.is_done() || resumed.was_rejected());
        let second: Vec<u64> = actions2
            .iter()
            .filter_map(|a| match a {
                SessionAction::SymbolDecoded(id) => Some(*id),
                _ => None,
            })
            .collect();
        // The resumed handshake summarized the pre-cut gains, so none of
        // them is ever re-decoded.
        for id in &second {
            assert!(!first.contains(id), "symbol {id} double-counted across resume");
        }
        // Combined, the two half-sessions still deliver the transfer.
        assert!(
            gained_before + second.len() as u64 > (fresh * 9 / 10) as u64,
            "resume lost progress: {gained_before} + {}",
            second.len()
        );
        assert_eq!(
            resumed.working().len(),
            held_at_cut + second.len(),
            "working set growth must equal fresh decodes"
        );
    }
}
