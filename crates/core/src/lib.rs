//! Informed content delivery across adaptive overlay networks — the
//! paper's system, assembled from the workspace's substrates into a
//! public API a downstream application would use.
//!
//! The paper's architecture (§3) has three tiers, each mapped here:
//!
//! 1. **Coarse-grained estimation** — peers exchange min-wise sketches
//!    ("an end-system's calling card") to estimate working-set overlap
//!    before committing bandwidth. [`WorkingSet`] maintains the sketch
//!    incrementally as symbols arrive.
//! 2. **Fine-grained reconciliation** — a receiver ships a digest of its
//!    working set so the sender can filter or personalize its
//!    transmissions. Digests are pluggable: every mechanism implements
//!    the [`summary`] module's `SetSummary`/`Reconciler` traits and
//!    registers in a `SummaryRegistry` under a stable `SummaryId` —
//!    whole-set, hash-set, and char-poly (exact, §5.1) alongside Bloom
//!    (§5.2) and ART (§5.3) all run through the same machinery.
//!    [`policy`] scores the registered candidates by their advertised
//!    wire/compute/accuracy numbers, following §3's tradeoff discussion.
//! 3. **Informed transfer** — the sender streams encoded symbols the
//!    receiver provably lacks, or recoded symbols tuned to the estimated
//!    correlation. [`session`] packages the whole exchange as a pair of
//!    transport-agnostic state machines speaking `icd-wire` messages;
//!    summaries travel in the generic tagged frame, so the machines
//!    dispatch purely on `SummaryId` (the `tcp_reconcile` example runs
//!    them over real sockets; tests run them over in-memory pipes).
//!
//! The simulation-facing strategy code lives in `icd-overlay`; this
//! crate is the payload-carrying, protocol-speaking layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod policy;
pub mod session;
pub mod summary;
pub mod working_set;

pub use machine::{
    drive_receiver, drive_receiver_with, drive_sender, DriveError, FramePump, MachineError,
    ReceiverMachine, SenderMachine, SessionAction, SessionEvent, WireStats,
};
pub use policy::{plan_transfer, select_summary, PolicyKnobs, TransferPlan};
#[allow(deprecated)]
pub use policy::SummaryChoice;
pub use session::{
    pump, pump_observed, PumpStep, ReceiverSession, SenderSession, SessionConfig, SessionError,
    SessionPump,
};
pub use summary::{SummaryId, SummaryRegistry, SummarySizing};
pub use working_set::WorkingSet;
