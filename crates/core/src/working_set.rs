//! A peer's working set: symbols plus incrementally maintained summaries.
//!
//! §4 requires that "all of our approaches can be incrementally updated
//! upon acquisition of new content, with constant overhead per receipt
//! of each new element". [`WorkingSet::insert`] therefore updates the
//! min-wise sketch (O(width) field ops) and the reconciliation tree
//! (O(log n)) on every arrival; Bloom filters and ART summaries — which
//! are built *for a particular peer exchange* — are generated on demand
//! from current state.

use bytes::Bytes;
use icd_art::{ArtParams, ReconciliationTree};
use icd_fountain::{EncodedSymbol, SymbolId};
use icd_sketch::{MinwiseSketch, OverlapEstimate, PermutationFamily};
use std::collections::HashMap;

/// The protocol-wide permutation-family seed (all peers must agree).
pub const FAMILY_SEED: u64 = 0x1CD0_F00D;

/// A peer's inventory of encoded symbols with live summaries.
#[derive(Debug, Clone)]
pub struct WorkingSet {
    symbols: HashMap<SymbolId, Bytes>,
    sketch: MinwiseSketch,
    tree: ReconciliationTree,
    family: PermutationFamily,
}

impl Default for WorkingSet {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkingSet {
    /// Creates an empty working set with the standard (1 KB) sketch.
    #[must_use]
    pub fn new() -> Self {
        let family = PermutationFamily::standard(FAMILY_SEED);
        Self {
            sketch: MinwiseSketch::new(&family),
            tree: ReconciliationTree::new(ArtParams::default()),
            symbols: HashMap::new(),
            family,
        }
    }

    /// Builds a working set from symbols.
    #[must_use]
    pub fn from_symbols<I: IntoIterator<Item = EncodedSymbol>>(symbols: I) -> Self {
        let mut ws = Self::new();
        for s in symbols {
            ws.insert(s);
        }
        ws
    }

    /// Inserts a symbol; returns `false` (and changes nothing) if the id
    /// was already present. Sketch and tree update incrementally.
    pub fn insert(&mut self, symbol: EncodedSymbol) -> bool {
        if self.symbols.contains_key(&symbol.id) {
            return false;
        }
        self.sketch.insert(&self.family, symbol.id);
        self.tree.insert(symbol.id);
        self.symbols.insert(symbol.id, symbol.payload);
        true
    }

    /// Number of symbols held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if no symbols are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Whether symbol `id` is present.
    #[must_use]
    pub fn contains(&self, id: SymbolId) -> bool {
        self.symbols.contains_key(&id)
    }

    /// Payload of symbol `id`, if held.
    #[must_use]
    pub fn payload(&self, id: SymbolId) -> Option<&Bytes> {
        self.symbols.get(&id)
    }

    /// All symbol ids (unordered).
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.symbols.keys().copied()
    }

    /// All symbol ids, sorted ascending. Summary construction and
    /// reconciliation consume this form so their outputs never depend on
    /// hash-map iteration order.
    #[must_use]
    pub fn sorted_ids(&self) -> Vec<SymbolId> {
        let mut ids: Vec<SymbolId> = self.symbols.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Builds the digest of the current ids under any registered
    /// mechanism — the one summary-construction path ([`crate::session`]
    /// uses the registry equivalently).
    pub fn build_summary(
        &self,
        id: crate::summary::SummaryId,
        sizing: &crate::summary::SummarySizing,
        estimate: &crate::summary::DiffEstimate,
        registry: &crate::summary::SummaryRegistry,
    ) -> Result<Box<dyn crate::summary::SetSummary>, crate::summary::SummaryError> {
        registry.build(id, sizing, estimate, &self.sorted_ids())
    }

    /// Materializes the symbols (unordered).
    pub fn symbols(&self) -> impl Iterator<Item = EncodedSymbol> + '_ {
        self.symbols.iter().map(|(&id, payload)| EncodedSymbol {
            id,
            payload: payload.clone(),
        })
    }

    /// The live min-wise sketch (the §4 calling card).
    #[must_use]
    pub fn sketch(&self) -> &MinwiseSketch {
        &self.sketch
    }

    /// Estimates overlap with a peer from its sketch (`self` = A,
    /// `peer` = B).
    #[must_use]
    pub fn estimate_against(&self, peer_sketch: &MinwiseSketch) -> OverlapEstimate {
        self.sketch.estimate(peer_sketch)
    }

    /// The live reconciliation tree (for searching a peer's summary).
    #[must_use]
    pub fn tree(&self) -> &ReconciliationTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    fn sym(id: SymbolId) -> EncodedSymbol {
        EncodedSymbol {
            id,
            payload: Bytes::from(id.to_le_bytes().to_vec()),
        }
    }

    fn filled(range: std::ops::Range<u64>, seed: u64) -> WorkingSet {
        let mut rng = Xoshiro256StarStar::new(seed);
        WorkingSet::from_symbols(range.map(|_| sym(rng.next_u64())))
    }

    #[test]
    fn insert_and_query() {
        let mut ws = WorkingSet::new();
        assert!(ws.is_empty());
        assert!(ws.insert(sym(7)));
        assert!(!ws.insert(sym(7)), "duplicate rejected");
        assert_eq!(ws.len(), 1);
        assert!(ws.contains(7));
        assert_eq!(ws.payload(7).expect("present").as_ref(), &7u64.to_le_bytes());
    }

    #[test]
    fn sketch_tracks_contents_incrementally() {
        let mut a = WorkingSet::new();
        let mut rng = Xoshiro256StarStar::new(1);
        let ids: Vec<u64> = (0..300).map(|_| rng.next_u64()).collect();
        for &id in &ids {
            a.insert(sym(id));
        }
        let b = WorkingSet::from_symbols(ids.iter().map(|&id| sym(id)));
        // Same contents → identical sketches and identical tree roots.
        assert_eq!(a.sketch().minima(), b.sketch().minima());
        assert_eq!(a.tree().root_value(), b.tree().root_value());
        let est = a.estimate_against(b.sketch());
        assert_eq!(est.resemblance(), 1.0);
        assert!(est.is_identical(0.01), "admission control should reject");
    }

    #[test]
    fn estimate_tracks_partial_overlap() {
        let mut rng = Xoshiro256StarStar::new(2);
        let shared: Vec<u64> = (0..500).map(|_| rng.next_u64()).collect();
        let mut a = WorkingSet::from_symbols(shared.iter().map(|&id| sym(id)));
        let mut b = WorkingSet::from_symbols(shared.iter().map(|&id| sym(id)));
        for _ in 0..500 {
            a.insert(sym(rng.next_u64()));
            b.insert(sym(rng.next_u64()));
        }
        let est = a.estimate_against(b.sketch());
        // True resemblance = 500/1500.
        assert!((est.resemblance() - 1.0 / 3.0).abs() < 0.1, "r = {}", est.resemblance());
        assert!(!est.is_identical(0.01));
    }

    #[test]
    fn built_summaries_cover_contents() {
        use crate::summary::{standard_registry, DiffEstimate, SummarySizing};
        let ws = filled(0..1000, 3);
        let registry = standard_registry();
        let est = DiffEstimate::new(ws.len(), ws.len(), 10);
        for id in registry.ids() {
            let digest = ws
                .build_summary(id, &SummarySizing::default(), &est, &registry)
                .expect("registered mechanism");
            // No mechanism may deny its own contents (one-sided error).
            for key in ws.ids() {
                assert!(digest.probably_contains(key), "{id} denied own key");
            }
        }
    }

    #[test]
    fn art_reconciliation_between_working_sets() {
        use crate::summary::{standard_registry, DiffEstimate, SummaryId, SummarySizing};
        let mut rng = Xoshiro256StarStar::new(4);
        let shared: Vec<u64> = (0..2000).map(|_| rng.next_u64()).collect();
        let a = WorkingSet::from_symbols(shared.iter().map(|&id| sym(id)));
        let mut b = WorkingSet::from_symbols(shared.iter().map(|&id| sym(id)));
        let fresh: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        for &id in &fresh {
            b.insert(sym(id));
        }
        let registry = standard_registry();
        let est = DiffEstimate::new(a.len(), b.len(), fresh.len());
        let summary = a
            .build_summary(SummaryId::ART, &SummarySizing::default(), &est, &registry)
            .expect("art registered");
        let found = summary.missing_at_peer(&b.sorted_ids());
        assert!(!found.is_empty());
        // One-sided error: everything found is genuinely missing at A.
        for id in &found {
            assert!(!a.contains(*id));
            assert!(fresh.contains(id));
        }
    }

    #[test]
    fn symbols_roundtrip() {
        let ws = filled(0..50, 5);
        let collected: Vec<EncodedSymbol> = ws.symbols().collect();
        assert_eq!(collected.len(), 50);
        let rebuilt = WorkingSet::from_symbols(collected);
        assert_eq!(rebuilt.tree().root_value(), ws.tree().root_value());
    }
}
