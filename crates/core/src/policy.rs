//! Transfer-plan selection — §3's tradeoff discussion as executable
//! policy.
//!
//! "The techniques we describe provide a range of options and are useful
//! in different scenarios, primarily depending on: the resources
//! available at the end-systems, the correlation between the working
//! sets at the end-systems, and the requirements of precision." This
//! module encodes those rules:
//!
//! * **Admission control** (§4): a candidate sender whose content is
//!   (estimated) identical is rejected outright.
//! * **Summary choice** (§5): every mechanism registered in the
//!   [`SummaryRegistry`] is a candidate. Instead of hardcoded
//!   per-mechanism thresholds, [`plan_transfer`] scores each candidate
//!   by its *advertised* costs — estimated wire bytes plus
//!   compute-weighted op count — and drops candidates below the
//!   deployment's recall floor. The paper's Bloom-for-large-differences /
//!   ART-for-small-differences rule emerges from the advertised numbers
//!   (Bloom's O(n) scan vs the ART's O(d log n) search at half the bit
//!   budget), and the same scoring admits the exact mechanisms when the
//!   knobs demand precision (§5.1's whole-set / hash-set / char-poly).
//! * **Recoding policy** (§5.4.2): with a summary in hand the sender can
//!   pick guaranteed-useful symbols and recoding is unnecessary; without
//!   one, recode with min-wise degree scaling.

use icd_fountain::RecodePolicy;
use icd_sketch::OverlapEstimate;

use crate::summary::{diff_estimate, SummaryId, SummaryRegistry, SummarySizing};

/// Resource/precision knobs a deployment sets per §3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyKnobs {
    /// Resemblance above which a candidate sender is considered
    /// identical and rejected (§4's admission control).
    pub identical_threshold: f64,
    /// Whether this end-system can afford fine-grained summaries at all
    /// ("not all clients will have the processing capability to perform
    /// fine-grained reconciliation", §5.4).
    pub fine_grained_capable: bool,
    /// Candidates whose advertised recall falls below this floor are not
    /// considered ("the requirements of precision", §3). Raising it
    /// toward 1.0 shifts selection to the exact mechanisms.
    pub min_recall: f64,
    /// Wire-byte equivalents charged per advertised compute op-unit —
    /// the resources-available axis. Zero scores by wire size alone;
    /// larger values penalize compute-heavy mechanisms (the
    /// characteristic polynomial's Θ(d³), Bloom's O(n) scan).
    pub compute_weight: f64,
}

impl Default for PolicyKnobs {
    fn default() -> Self {
        Self {
            identical_threshold: 0.99,
            fine_grained_capable: true,
            min_recall: 0.6,
            compute_weight: 0.15,
        }
    }
}

/// Which fine-grained summary the receiver should send, as a closed
/// enum. Superseded by [`SummaryId`] + the registry: the enum can only
/// name the mechanisms it was written for, which is exactly why three of
/// the five shipped mechanisms could never run end-to-end through it.
#[deprecated(
    since = "0.1.0",
    note = "use `SummaryId` and a `SummaryRegistry`; convert with `SummaryId::from`"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryChoice {
    /// No summary: the sender works from the sketch alone (recoding).
    None,
    /// Bloom filter over the receiver's working set.
    Bloom,
    /// Approximate reconciliation tree summary.
    Art,
}

#[allow(deprecated)]
impl From<SummaryChoice> for SummaryId {
    fn from(choice: SummaryChoice) -> Self {
        match choice {
            SummaryChoice::None => SummaryId::NONE,
            SummaryChoice::Bloom => SummaryId::BLOOM,
            SummaryChoice::Art => SummaryId::ART,
        }
    }
}

/// The agreed plan for one sender→receiver connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferPlan {
    /// Do not connect: the peer offers (almost) nothing new.
    Reject,
    /// Connect; receiver ships the chosen summary; sender filters its
    /// transmissions through it (reconciled transfer, §3).
    Reconciled {
        /// Registry id of the summary the receiver should provide
        /// ([`SummaryId::NONE`] for a sketch-only reconciled transfer).
        summary: SummaryId,
    },
    /// Connect; sender recodes over its whole working set with the given
    /// degree policy (speculative transfer, §3).
    Speculative {
        /// Degree policy for the recoder.
        recode: RecodePolicy,
    },
}

/// Chooses a plan from the exchanged sketch estimate. `estimate` is
/// taken from the receiver's perspective: A = receiver, B = candidate
/// sender. Candidate summaries come from `registry`, scored under
/// `sizing` — no mechanism is named here.
#[must_use]
pub fn plan_transfer(
    estimate: &OverlapEstimate,
    knobs: &PolicyKnobs,
    sizing: &SummarySizing,
    registry: &SummaryRegistry,
) -> TransferPlan {
    // §4: "receivers ... immediately reject candidate senders whose
    // content is identical to their own."
    if estimate.is_identical(1.0 - knobs.identical_threshold) {
        return TransferPlan::Reject;
    }
    // A peer with nothing, or nothing new (within float noise from the
    // inclusion–exclusion arithmetic), is not worth a connection.
    let useful = estimate.useful_fraction_of_b();
    if estimate.size_b() == 0 || useful <= 1e-9 {
        return TransferPlan::Reject;
    }
    let speculative = TransferPlan::Speculative {
        recode: RecodePolicy::MinwiseScaled {
            containment: estimate.containment_of_b(),
        },
    };
    if !knobs.fine_grained_capable {
        // §5.4: clients without fine-grained capability lean on recoding
        // tuned by the sketch.
        return speculative;
    }
    match select_summary(estimate, knobs, sizing, registry) {
        // No registered mechanism meets the recall floor (or the
        // registry is empty): fall back to the sketch-driven transfer.
        None => speculative,
        Some(summary) => TransferPlan::Reconciled { summary },
    }
}

/// Scores every registered mechanism and returns the cheapest one that
/// clears the recall floor (`None` when nothing qualifies). The rule —
/// advertised wire bytes + `compute_weight` × advertised op units, ties
/// toward the lower [`SummaryId`] — lives in
/// [`icd_summary::cheapest_mechanism`], shared with the overlay
/// engine's per-link advisor so sessions and simulated links always
/// agree.
#[must_use]
pub fn select_summary(
    estimate: &OverlapEstimate,
    knobs: &PolicyKnobs,
    sizing: &SummarySizing,
    registry: &SummaryRegistry,
) -> Option<SummaryId> {
    let est = diff_estimate(estimate);
    icd_summary::cheapest_mechanism(registry, sizing, &est, knobs.min_recall, knobs.compute_weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::standard_registry;

    fn est(resemblance: f64, a: u64, b: u64) -> OverlapEstimate {
        OverlapEstimate::from_resemblance(resemblance, a, b)
    }

    fn plan(estimate: &OverlapEstimate, knobs: &PolicyKnobs) -> TransferPlan {
        plan_transfer(
            estimate,
            knobs,
            &SummarySizing::default(),
            &standard_registry(),
        )
    }

    #[test]
    fn identical_peers_rejected() {
        let plan = plan(&est(1.0, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }

    #[test]
    fn near_identical_rejected_by_threshold() {
        let plan = plan(&est(0.995, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }

    #[test]
    fn large_difference_scores_to_bloom() {
        // Disjoint equal-size sets: everything useful. Bloom's small
        // wire footprint wins; the ART's O(d log n) search is priced out
        // at d = n.
        let plan = plan(&est(0.0, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(
            plan,
            TransferPlan::Reconciled {
                summary: SummaryId::BLOOM
            }
        );
    }

    #[test]
    fn small_difference_scores_to_art() {
        // 1000 vs 1000 with r = 0.96 → d ≈ 20. The ART's halved bit
        // budget and O(d log n) search beat Bloom's O(n) scan.
        let plan = plan(&est(0.96, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(
            plan,
            TransferPlan::Reconciled {
                summary: SummaryId::ART
            }
        );
    }

    #[test]
    fn precision_knobs_unlock_exact_mechanisms() {
        // A recall floor above Bloom/ART accuracy and free compute: the
        // char-poly sketch (O(d) wire) wins small differences, the
        // truncated hash set wins large ones — §5.1's regime, reachable
        // through the same scoring that picks Bloom/ART by default.
        let knobs = PolicyKnobs {
            min_recall: 0.98,
            compute_weight: 0.0,
            ..PolicyKnobs::default()
        };
        assert_eq!(
            plan(&est(0.96, 1000, 1000), &knobs),
            TransferPlan::Reconciled {
                summary: SummaryId::CHAR_POLY
            }
        );
        assert_eq!(
            plan(&est(0.0, 1000, 1000), &knobs),
            TransferPlan::Reconciled {
                summary: SummaryId::HASH_SET
            }
        );
        // Demanding exactly 1.0 leaves only the whole-set exchange.
        let exact = PolicyKnobs {
            min_recall: 1.0,
            compute_weight: 0.0,
            ..PolicyKnobs::default()
        };
        assert_eq!(
            plan(&est(0.5, 1000, 1000), &exact),
            TransferPlan::Reconciled {
                summary: SummaryId::WHOLE_SET
            }
        );
    }

    #[test]
    fn impossible_recall_floor_falls_back_to_speculative() {
        let knobs = PolicyKnobs {
            min_recall: 1.1,
            ..PolicyKnobs::default()
        };
        assert!(matches!(
            plan(&est(0.5, 1000, 1000), &knobs),
            TransferPlan::Speculative { .. }
        ));
        // An empty registry behaves the same way.
        let none = plan_transfer(
            &est(0.5, 1000, 1000),
            &PolicyKnobs::default(),
            &SummarySizing::default(),
            &SummaryRegistry::new(),
        );
        assert!(matches!(none, TransferPlan::Speculative { .. }));
    }

    #[test]
    fn weak_clients_fall_back_to_recoding() {
        let knobs = PolicyKnobs {
            fine_grained_capable: false,
            ..PolicyKnobs::default()
        };
        let plan = plan(&est(0.5, 1000, 1000), &knobs);
        match plan {
            TransferPlan::Speculative {
                recode: RecodePolicy::MinwiseScaled { containment },
            } => {
                // r = 0.5 on equal sizes → containment 2/3.
                assert!((containment - 2.0 / 3.0).abs() < 1e-9);
            }
            other => panic!("expected speculative plan, got {other:?}"),
        }
    }

    #[test]
    fn subset_sender_rejected() {
        // B ⊂ A: nothing useful regardless of resemblance.
        let plan = plan(&est(0.1, 1000, 100), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }

    #[test]
    fn empty_estimate_is_rejected_not_crashed() {
        let plan = plan(&est(0.0, 0, 0), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_choice_converts_to_ids() {
        assert_eq!(SummaryId::from(SummaryChoice::None), SummaryId::NONE);
        assert_eq!(SummaryId::from(SummaryChoice::Bloom), SummaryId::BLOOM);
        assert_eq!(SummaryId::from(SummaryChoice::Art), SummaryId::ART);
    }
}
