//! Transfer-plan selection — §3's tradeoff discussion as executable
//! policy.
//!
//! "The techniques we describe provide a range of options and are useful
//! in different scenarios, primarily depending on: the resources
//! available at the end-systems, the correlation between the working
//! sets at the end-systems, and the requirements of precision." This
//! module encodes those rules:
//!
//! * **Admission control** (§4): a candidate sender whose content is
//!   (estimated) identical is rejected outright.
//! * **Summary choice** (§5.3): Bloom filters when the expected
//!   difference is large (search cost O(n) amortizes well); ARTs when
//!   the difference is small relative to the sets ("especially useful
//!   when the set difference is small but still potentially worthwhile",
//!   with search cost O(d log n)).
//! * **Recoding policy** (§5.4.2): with a summary in hand the sender can
//!   pick guaranteed-useful symbols and recoding is unnecessary; without
//!   one, recode with min-wise degree scaling.

use icd_fountain::RecodePolicy;
use icd_sketch::OverlapEstimate;

/// Resource/precision knobs a deployment sets per §3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyKnobs {
    /// Resemblance above which a candidate sender is considered
    /// identical and rejected (§4's admission control).
    pub identical_threshold: f64,
    /// If the expected difference is below this fraction of the peer's
    /// set, prefer an ART (sublinear search); otherwise a Bloom filter.
    pub art_difference_fraction: f64,
    /// Whether this end-system can afford fine-grained summaries at all
    /// ("not all clients will have the processing capability to perform
    /// fine-grained reconciliation", §5.4).
    pub fine_grained_capable: bool,
}

impl Default for PolicyKnobs {
    fn default() -> Self {
        Self {
            identical_threshold: 0.99,
            art_difference_fraction: 0.05,
            fine_grained_capable: true,
        }
    }
}

/// Which fine-grained summary (if any) the receiver should send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryChoice {
    /// No summary: the sender works from the sketch alone (recoding).
    None,
    /// Bloom filter over the receiver's working set.
    Bloom,
    /// Approximate reconciliation tree summary.
    Art,
}

/// The agreed plan for one sender→receiver connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferPlan {
    /// Do not connect: the peer offers (almost) nothing new.
    Reject,
    /// Connect; receiver ships the chosen summary; sender filters its
    /// transmissions through it (reconciled transfer, §3).
    Reconciled {
        /// Summary the receiver should provide.
        summary: SummaryChoice,
    },
    /// Connect; sender recodes over its whole working set with the given
    /// degree policy (speculative transfer, §3).
    Speculative {
        /// Degree policy for the recoder.
        recode: RecodePolicy,
    },
}

/// Chooses a plan from the exchanged sketch estimate. `estimate` is
/// taken from the receiver's perspective: A = receiver, B = candidate
/// sender.
#[must_use]
pub fn plan_transfer(estimate: &OverlapEstimate, knobs: &PolicyKnobs) -> TransferPlan {
    // §4: "receivers ... immediately reject candidate senders whose
    // content is identical to their own."
    if estimate.is_identical(1.0 - knobs.identical_threshold) {
        return TransferPlan::Reject;
    }
    // A peer with nothing, or nothing new (within float noise from the
    // inclusion–exclusion arithmetic), is not worth a connection.
    let useful = estimate.useful_fraction_of_b();
    if estimate.size_b() == 0 || useful <= 1e-9 {
        return TransferPlan::Reject;
    }
    if !knobs.fine_grained_capable {
        // §5.4: clients without fine-grained capability lean on recoding
        // tuned by the sketch.
        return TransferPlan::Speculative {
            recode: RecodePolicy::MinwiseScaled {
                containment: estimate.containment_of_b(),
            },
        };
    }
    // Expected |B ∖ A| as a fraction of |B| decides Bloom vs ART.
    let summary = if useful < knobs.art_difference_fraction {
        SummaryChoice::Art
    } else {
        SummaryChoice::Bloom
    };
    TransferPlan::Reconciled { summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(resemblance: f64, a: u64, b: u64) -> OverlapEstimate {
        OverlapEstimate::from_resemblance(resemblance, a, b)
    }

    #[test]
    fn identical_peers_rejected() {
        let plan = plan_transfer(&est(1.0, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }

    #[test]
    fn near_identical_rejected_by_threshold() {
        let plan = plan_transfer(&est(0.995, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }

    #[test]
    fn large_difference_uses_bloom() {
        // Disjoint equal-size sets: everything useful.
        let plan = plan_transfer(&est(0.0, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(
            plan,
            TransferPlan::Reconciled {
                summary: SummaryChoice::Bloom
            }
        );
    }

    #[test]
    fn small_difference_uses_art() {
        // 1000 vs 1000 with r = 0.96 → useful fraction ≈ 2 % < 5 %.
        let plan = plan_transfer(&est(0.96, 1000, 1000), &PolicyKnobs::default());
        assert_eq!(
            plan,
            TransferPlan::Reconciled {
                summary: SummaryChoice::Art
            }
        );
    }

    #[test]
    fn weak_clients_fall_back_to_recoding() {
        let knobs = PolicyKnobs {
            fine_grained_capable: false,
            ..PolicyKnobs::default()
        };
        let plan = plan_transfer(&est(0.5, 1000, 1000), &knobs);
        match plan {
            TransferPlan::Speculative {
                recode: RecodePolicy::MinwiseScaled { containment },
            } => {
                // r = 0.5 on equal sizes → containment 2/3.
                assert!((containment - 2.0 / 3.0).abs() < 1e-9);
            }
            other => panic!("expected speculative plan, got {other:?}"),
        }
    }

    #[test]
    fn subset_sender_rejected() {
        // B ⊂ A: nothing useful regardless of resemblance.
        let plan = plan_transfer(&est(0.1, 1000, 100), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }

    #[test]
    fn empty_estimate_is_rejected_not_crashed() {
        let plan = plan_transfer(&est(0.0, 0, 0), &PolicyKnobs::default());
        assert_eq!(plan, TransferPlan::Reject);
    }
}
