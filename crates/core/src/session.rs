//! Transport-agnostic reconciliation sessions.
//!
//! The §3 exchange as a pair of state machines speaking `icd-wire`
//! messages. The receiver drives:
//!
//! 1. **R → S**: min-wise sketch (the calling card).
//! 2. **S → R**: the sender's sketch in return.
//! 3. Receiver applies [`crate::policy::plan_transfer`]:
//!    * *Reject* — session ends (admission control; no bandwidth spent
//!      beyond two 1 KB packets).
//!    * *Reconciled* — receiver builds the chosen summary through its
//!      [`SummaryRegistry`] and sends it in the generic tagged frame,
//!      plus a `SymbolRequest{count}`. Any registered mechanism —
//!      whole-set, hash-set, char-poly, bloom, art, or an out-of-tree
//!      one — takes this path; the machines never name a mechanism.
//!    * *Speculative* — receiver sends only `SymbolRequest{count}`.
//! 4. **S → R**: up to `count` data messages — encoded symbols the
//!    decoded summary's [`Reconciler`](crate::summary::Reconciler)
//!    cleared (reconciled), or recoded symbols with min-wise-scaled
//!    degrees (speculative) — then `End`.
//!
//! The machines are pure: `on_message` consumes one message and returns
//! the messages to transmit. They can be driven over TCP (the
//! `tcp_reconcile` example), in-memory queues ([`pump`], used by tests),
//! or anything else that moves bytes.

use std::sync::Arc;

use icd_fountain::{EncodedSymbol, RecodeBuffer, RecodePolicy, Recoder};
use icd_sketch::MinwiseSketch;
use icd_util::rng::Xoshiro256StarStar;
use icd_wire::Message;

use crate::policy::{plan_transfer, PolicyKnobs, TransferPlan};
use crate::summary::{
    diff_estimate, standard_registry_arc, SummaryError, SummaryId, SummaryRegistry, SummarySizing,
};
use crate::working_set::WorkingSet;

/// Session-level configuration (receiver side), built with the
/// `with_*` methods:
///
/// ```
/// use icd_core::{SessionConfig, summary::SummaryId};
/// let config = SessionConfig::new()
///     .with_request(256)
///     .with_summary(SummaryId::CHAR_POLY);
/// ```
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Symbols to request (§6.1: chosen "with appropriate allowances for
    /// decoding overhead").
    pub request: u64,
    /// Policy knobs for plan selection.
    pub knobs: PolicyKnobs,
    /// Summary sizing shared by every registered mechanism.
    pub sizing: SummarySizing,
    /// When set, skip policy scoring and ship exactly this summary —
    /// how experiment sweeps pin each mechanism in turn.
    pub summary_override: Option<SummaryId>,
    /// RNG seed (recoding draws on the sender side use the peer's seed).
    pub seed: u64,
    /// The mechanism registry both construction and scoring consult.
    pub registry: Arc<SummaryRegistry>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            request: 128,
            knobs: PolicyKnobs::default(),
            sizing: SummarySizing::default(),
            summary_override: None,
            seed: 0x5E55_1014,
            registry: standard_registry_arc(),
        }
    }
}

impl SessionConfig {
    /// Starts a builder chain from the defaults.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of symbols to request.
    #[must_use]
    pub fn with_request(mut self, request: u64) -> Self {
        self.request = request;
        self
    }

    /// Sets the policy knobs.
    #[must_use]
    pub fn with_knobs(mut self, knobs: PolicyKnobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Sets the summary sizing.
    #[must_use]
    pub fn with_sizing(mut self, sizing: SummarySizing) -> Self {
        self.sizing = sizing;
        self
    }

    /// Forces a specific summary mechanism instead of policy scoring.
    /// §4 admission control still applies: a peer with nothing useful is
    /// rejected before the pinned digest is built.
    #[must_use]
    pub fn with_summary(mut self, id: SummaryId) -> Self {
        self.summary_override = Some(id);
        self
    }

    /// Sets the session seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the summary registry (e.g. one with a private mechanism
    /// registered).
    #[must_use]
    pub fn with_registry(mut self, registry: Arc<SummaryRegistry>) -> Self {
        self.registry = registry;
        self
    }
}

/// Session failures: protocol violations, not I/O (the transport layer
/// owns those).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// A message arrived that the current state cannot accept.
    UnexpectedMessage {
        /// The state the machine was in.
        state: &'static str,
        /// A short description of the offending message.
        got: &'static str,
    },
    /// The peer's sketch uses a different permutation family.
    FamilyMismatch,
    /// A summary frame named a mechanism absent from this side's
    /// registry.
    UnknownSummary {
        /// The raw id the frame carried.
        id: u16,
    },
    /// A summary body failed its mechanism's decoder.
    MalformedSummary(&'static str),
}

impl From<SummaryError> for SessionError {
    fn from(err: SummaryError) -> Self {
        match err {
            SummaryError::Unknown(id) => Self::UnknownSummary { id: id.0 },
            SummaryError::Malformed(why) => Self::MalformedSummary(why),
            SummaryError::DuplicateId(_) => Self::MalformedSummary("duplicate summary id"),
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnexpectedMessage { state, got } => {
                write!(f, "unexpected {got} in state {state}")
            }
            Self::FamilyMismatch => write!(f, "peer sketch from a different permutation family"),
            Self::UnknownSummary { id } => write!(f, "summary id {id} not in registry"),
            Self::MalformedSummary(why) => write!(f, "summary body rejected: {why}"),
        }
    }
}

impl std::error::Error for SessionError {}

fn describe(msg: &Message) -> &'static str {
    match msg {
        Message::Minwise(_) => "minwise sketch",
        Message::RandomSample(_) => "random sample",
        Message::ModK(_) => "mod-k sample",
        Message::Summary { .. } => "summary frame",
        Message::SymbolRequest { .. } => "symbol request",
        Message::EncodedSymbol { .. } => "encoded symbol",
        Message::RecodedSymbol { .. } => "recoded symbol",
        Message::End { .. } => "end",
    }
}

/// Receiver-side session.
#[derive(Debug)]
pub struct ReceiverSession {
    config: SessionConfig,
    state: ReceiverState,
    buffer: RecodeBuffer,
    gained: u64,
    plan: Option<TransferPlan>,
    /// Ids recovered since the last [`ReceiverSession::take_recovered`]
    /// call — the sans-I/O machine layer turns these into
    /// `SymbolDecoded` actions.
    recovered: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReceiverState {
    AwaitPeerSketch,
    Streaming,
    Done,
    Rejected,
}

impl ReceiverSession {
    /// Starts a session: returns the machine and the opening message
    /// (the receiver's sketch).
    #[must_use]
    pub fn start(working: &WorkingSet, config: SessionConfig) -> (Self, Vec<Message>) {
        let mut buffer = RecodeBuffer::new();
        for sym in working.symbols() {
            let _ = buffer.add_known(&sym);
        }
        let opening = vec![Message::Minwise(working.sketch().clone())];
        (
            Self {
                config,
                state: ReceiverState::AwaitPeerSketch,
                buffer,
                gained: 0,
                plan: None,
                recovered: Vec::new(),
            },
            opening,
        )
    }

    /// Feeds one inbound message; mutates `working` as symbols arrive
    /// and returns the messages to send back.
    pub fn on_message(
        &mut self,
        working: &mut WorkingSet,
        msg: &Message,
    ) -> Result<Vec<Message>, SessionError> {
        match (self.state, msg) {
            (ReceiverState::AwaitPeerSketch, Message::Minwise(peer_sketch)) => {
                if peer_sketch.family_seed() != working.sketch().family_seed() {
                    return Err(SessionError::FamilyMismatch);
                }
                let estimate = working.estimate_against(peer_sketch);
                // An override pins the mechanism (sweeps comparing
                // mechanisms must not have policy re-deciding per cell);
                // otherwise policy scores the registry. §4 admission
                // control applies either way — a provably useless peer
                // is rejected before any digest is built.
                let scored = plan_transfer(
                    &estimate,
                    &self.config.knobs,
                    &self.config.sizing,
                    &self.config.registry,
                );
                let plan = match (self.config.summary_override, scored) {
                    (_, TransferPlan::Reject) => TransferPlan::Reject,
                    (Some(id), _) => TransferPlan::Reconciled { summary: id },
                    (None, scored) => scored,
                };
                match plan {
                    TransferPlan::Reject => {
                        self.plan = Some(plan);
                        self.state = ReceiverState::Rejected;
                        Ok(vec![Message::End { sent: 0 }])
                    }
                    TransferPlan::Reconciled { summary } => {
                        // Build the digest *before* committing plan and
                        // state: a registry failure (unknown override
                        // id, constructor error) must leave the machine
                        // in AwaitPeerSketch, not half-streaming.
                        let mut out = Vec::new();
                        if summary != SummaryId::NONE {
                            let est = diff_estimate(&estimate);
                            let digest = self.config.registry.build(
                                summary,
                                &self.config.sizing,
                                &est,
                                &working.sorted_ids(),
                            )?;
                            out.push(Message::Summary {
                                summary_id: summary.0,
                                body: digest.encode_body(),
                            });
                        }
                        out.push(Message::SymbolRequest {
                            count: self.config.request,
                        });
                        self.plan = Some(plan);
                        self.state = ReceiverState::Streaming;
                        Ok(out)
                    }
                    TransferPlan::Speculative { .. } => {
                        self.plan = Some(plan);
                        self.state = ReceiverState::Streaming;
                        Ok(vec![Message::SymbolRequest {
                            count: self.config.request,
                        }])
                    }
                }
            }
            (ReceiverState::Streaming, Message::EncodedSymbol { id, payload }) => {
                self.ingest(working, std::slice::from_ref(id), payload);
                Ok(vec![])
            }
            (ReceiverState::Streaming, Message::RecodedSymbol { components, payload }) => {
                self.ingest(working, components, payload);
                Ok(vec![])
            }
            (ReceiverState::Streaming, Message::End { .. }) => {
                self.state = ReceiverState::Done;
                Ok(vec![])
            }
            (_, other) => Err(SessionError::UnexpectedMessage {
                state: self.state_name(),
                got: describe(other),
            }),
        }
    }

    fn ingest(&mut self, working: &mut WorkingSet, components: &[u64], payload: &[u8]) {
        let mut recovered = Vec::new();
        self.buffer.receive_parts(components, payload, &mut recovered);
        for symbol in recovered {
            let id = symbol.id;
            if working.insert(symbol) {
                self.gained += 1;
                self.recovered.push(id);
            }
        }
    }

    /// Drains the ids of symbols newly added to the working set since
    /// the previous call. Event-driven drivers poll this after each
    /// message to report per-symbol progress; batch callers can ignore
    /// it (the buffer simply accumulates until drained).
    pub fn take_recovered(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.recovered)
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            ReceiverState::AwaitPeerSketch => "await-peer-sketch",
            ReceiverState::Streaming => "streaming",
            ReceiverState::Done => "done",
            ReceiverState::Rejected => "rejected",
        }
    }

    /// True when the stream finished normally.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == ReceiverState::Done
    }

    /// True when admission control rejected the peer.
    #[must_use]
    pub fn was_rejected(&self) -> bool {
        self.state == ReceiverState::Rejected
    }

    /// New distinct symbols gained this session.
    #[must_use]
    pub fn gained(&self) -> u64 {
        self.gained
    }

    /// The plan chosen after the sketch exchange (None before that).
    #[must_use]
    pub fn plan(&self) -> Option<TransferPlan> {
        self.plan
    }
}

/// Sender-side session. Owns a snapshot of the sender's working set for
/// the connection's duration (the §6.1 model: summaries and inventories
/// are not updated mid-connection).
#[derive(Debug)]
pub struct SenderSession {
    working: WorkingSet,
    state: SenderState,
    registry: Arc<SummaryRegistry>,
    /// Receiver sketch, kept for speculative-degree estimation.
    receiver_sketch: Option<MinwiseSketch>,
    /// Candidate symbols cleared by a receiver summary.
    candidates: Option<Vec<EncodedSymbol>>,
    rng: Xoshiro256StarStar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderState {
    AwaitSketch,
    AwaitPlan,
    Done,
}

impl SenderSession {
    /// Creates the sender side over a snapshot of its working set, with
    /// the standard registry.
    #[must_use]
    pub fn new(working: WorkingSet, seed: u64) -> Self {
        Self::with_registry(working, seed, standard_registry_arc())
    }

    /// Creates the sender side with an explicit registry (must cover
    /// every mechanism the receiver may choose).
    #[must_use]
    pub fn with_registry(working: WorkingSet, seed: u64, registry: Arc<SummaryRegistry>) -> Self {
        Self {
            working,
            state: SenderState::AwaitSketch,
            registry,
            receiver_sketch: None,
            candidates: None,
            rng: Xoshiro256StarStar::new(seed),
        }
    }

    /// Feeds one inbound message and returns replies.
    pub fn on_message(&mut self, msg: &Message) -> Result<Vec<Message>, SessionError> {
        match (self.state, msg) {
            (SenderState::AwaitSketch, Message::Minwise(sketch)) => {
                if sketch.family_seed() != self.working.sketch().family_seed() {
                    return Err(SessionError::FamilyMismatch);
                }
                self.receiver_sketch = Some(sketch.clone());
                self.state = SenderState::AwaitPlan;
                Ok(vec![Message::Minwise(self.working.sketch().clone())])
            }
            (SenderState::AwaitPlan, Message::Summary { summary_id, body }) => {
                // One dispatch for every mechanism: registry decode, then
                // the Reconciler trait produces the cleared candidates.
                let reconciler = self.registry.decode(SummaryId(*summary_id), body)?;
                let missing = reconciler.missing_at_peer(&self.working.sorted_ids());
                let candidates: Vec<EncodedSymbol> = missing
                    .into_iter()
                    .filter_map(|id| {
                        self.working.payload(id).map(|p| EncodedSymbol {
                            id,
                            payload: p.clone(),
                        })
                    })
                    .collect();
                self.candidates = Some(candidates);
                Ok(vec![])
            }
            (SenderState::AwaitPlan, Message::SymbolRequest { count }) => {
                let out = self.stream(*count);
                self.state = SenderState::Done;
                Ok(out)
            }
            (SenderState::AwaitPlan, Message::End { .. }) => {
                // Admission control rejected us; nothing to do.
                self.state = SenderState::Done;
                Ok(vec![])
            }
            (_, other) => Err(SessionError::UnexpectedMessage {
                state: self.state_name(),
                got: describe(other),
            }),
        }
    }

    /// Produces the data stream answering a request for `count` symbols.
    fn stream(&mut self, count: u64) -> Vec<Message> {
        let mut out: Vec<Message> = Vec::new();
        match self.candidates.take() {
            Some(mut candidates) => {
                // Reconciled transfer: ship cleared symbols, most once
                // each, stopping at the request or exhaustion.
                self.rng.shuffle(&mut candidates);
                for sym in candidates.into_iter().take(count as usize) {
                    // `sym.payload` is shared with the working set, so
                    // the message costs a reference count, not a copy.
                    out.push(Message::EncodedSymbol {
                        id: sym.id,
                        payload: sym.payload,
                    });
                }
            }
            None => {
                // Speculative transfer: recode over the whole set with
                // min-wise-scaled degrees.
                let containment = self
                    .receiver_sketch
                    .as_ref()
                    .map(|rs| rs.estimate(self.working.sketch()).containment_of_b())
                    .unwrap_or(0.0);
                if !self.working.is_empty() {
                    let recoder = Recoder::new(
                        self.working.symbols().collect(),
                        icd_fountain::recode::PAPER_DEGREE_LIMIT,
                        RecodePolicy::MinwiseScaled { containment },
                    );
                    for _ in 0..count {
                        let rec = recoder.generate(&mut self.rng);
                        out.push(Message::RecodedSymbol {
                            components: rec.components,
                            payload: rec.payload,
                        });
                    }
                }
            }
        }
        let sent = out.len() as u64;
        out.push(Message::End { sent });
        out
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            SenderState::AwaitSketch => "await-sketch",
            SenderState::AwaitPlan => "await-plan",
            SenderState::Done => "done",
        }
    }

    /// True when the sender has answered the request (or been rejected).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == SenderState::Done
    }
}

use icd_util::rng::Rng64 as _;

/// What one [`SessionPump::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpStep {
    /// At least one message was delivered.
    Progressed,
    /// Both queues were empty — the exchange is quiescent. Stepping
    /// again stays `Idle`; the call never blocks.
    Idle,
}

/// Poll-style, non-blocking driver for one receiver/sender session pair
/// over in-memory queues.
///
/// Each [`SessionPump::step`] delivers *at most one* message in each
/// direction and returns immediately — the shape an event-driven
/// scheduler (the overlay engine, an async reactor, a select loop over
/// many concurrent sessions) needs: it can interleave steps of many
/// pumps, run one session a message at a time between simulated events,
/// and detect quiescence without ever parking a thread. The batch
/// [`pump`]/[`pump_observed`] helpers are loops over this type, so both
/// drivers exchange byte-identical message sequences.
#[derive(Debug, Default)]
pub struct SessionPump {
    to_sender: std::collections::VecDeque<Message>,
    to_receiver: std::collections::VecDeque<Message>,
    delivered_to_sender: u64,
    delivered_to_receiver: u64,
}

impl SessionPump {
    /// Creates a pump primed with the receiver's opening messages (from
    /// [`ReceiverSession::start`]).
    #[must_use]
    pub fn new(opening: Vec<Message>) -> Self {
        Self {
            to_sender: opening.into(),
            ..Self::default()
        }
    }

    /// True when no message is queued in either direction.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.to_sender.is_empty() && self.to_receiver.is_empty()
    }

    /// Messages queued toward the sender and the receiver respectively.
    #[must_use]
    pub fn pending(&self) -> (usize, usize) {
        (self.to_sender.len(), self.to_receiver.len())
    }

    /// Messages delivered so far `(to_sender, to_receiver)` — what the
    /// historical `pump` returned at quiescence.
    #[must_use]
    pub fn delivered(&self) -> (u64, u64) {
        (self.delivered_to_sender, self.delivered_to_receiver)
    }

    /// Delivers at most one queued message to each side and returns
    /// without blocking. Errors propagate from the state machines.
    pub fn step(
        &mut self,
        receiver: &mut ReceiverSession,
        receiver_working: &mut WorkingSet,
        sender: &mut SenderSession,
    ) -> Result<PumpStep, SessionError> {
        self.step_observed(receiver, receiver_working, sender, |_| {})
    }

    /// [`SessionPump::step`] with an observer invoked on each message as
    /// it is delivered (byte-accounting instrumentation).
    pub fn step_observed(
        &mut self,
        receiver: &mut ReceiverSession,
        receiver_working: &mut WorkingSet,
        sender: &mut SenderSession,
        mut observe: impl FnMut(&Message),
    ) -> Result<PumpStep, SessionError> {
        let mut progressed = false;
        if let Some(msg) = self.to_sender.pop_front() {
            self.delivered_to_sender += 1;
            observe(&msg);
            self.to_receiver.extend(sender.on_message(&msg)?);
            progressed = true;
        }
        if let Some(msg) = self.to_receiver.pop_front() {
            self.delivered_to_receiver += 1;
            observe(&msg);
            self.to_sender.extend(receiver.on_message(receiver_working, &msg)?);
            progressed = true;
        }
        Ok(if progressed {
            PumpStep::Progressed
        } else {
            PumpStep::Idle
        })
    }
}

/// Drives a receiver and a sender against each other over in-memory
/// queues until quiescence. Returns the number of messages exchanged
/// `(to_sender, to_receiver)`. Used by tests and the quickstart example;
/// the TCP example replaces this loop with sockets, and event-driven
/// callers use [`SessionPump`] directly.
pub fn pump(
    receiver: &mut ReceiverSession,
    receiver_working: &mut WorkingSet,
    sender: &mut SenderSession,
    opening: Vec<Message>,
) -> Result<(u64, u64), SessionError> {
    pump_observed(receiver, receiver_working, sender, opening, |_| {})
}

/// [`pump`] with an observer invoked on every message as it is
/// delivered — the instrumentation hook byte-accounting harnesses use,
/// guaranteed to see exactly the exchange the plain pump drives.
pub fn pump_observed(
    receiver: &mut ReceiverSession,
    receiver_working: &mut WorkingSet,
    sender: &mut SenderSession,
    opening: Vec<Message>,
    mut observe: impl FnMut(&Message),
) -> Result<(u64, u64), SessionError> {
    let mut queues = SessionPump::new(opening);
    while queues.step_observed(receiver, receiver_working, sender, &mut observe)?
        == PumpStep::Progressed
    {}
    Ok(queues.delivered())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use icd_util::rng::{Rng64, Xoshiro256StarStar};

    fn sym(id: u64) -> EncodedSymbol {
        EncodedSymbol {
            id,
            payload: Bytes::from(id.to_le_bytes().to_vec()),
        }
    }

    fn working(ids: &[u64]) -> WorkingSet {
        WorkingSet::from_symbols(ids.iter().map(|&id| sym(id)))
    }

    fn ids(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn identical_peers_reject_after_two_packets() {
        let shared = ids(500, 1);
        let mut recv_ws = working(&shared);
        let send_ws = working(&shared);
        let (mut recv, opening) = ReceiverSession::start(&recv_ws, SessionConfig::default());
        let mut send = SenderSession::new(send_ws, 7);
        let (s, r) = pump(&mut recv, &mut recv_ws, &mut send, opening).expect("pump");
        assert!(recv.was_rejected());
        assert!(send.is_done());
        assert_eq!(recv.gained(), 0);
        // Admission control costs exactly: sketch out, sketch back, end.
        assert_eq!(s, 2); // sketch + end... (receiver sent sketch, then End)
        assert_eq!(r, 1); // sender's sketch
    }

    #[test]
    fn bloom_reconciled_transfer_moves_only_useful_symbols() {
        let shared = ids(1000, 2);
        let fresh = ids(300, 3);
        let mut recv_ws = working(&shared);
        let mut sender_ids = shared.clone();
        sender_ids.extend(fresh.iter().copied());
        let send_ws = working(&sender_ids);
        let config = SessionConfig::new().with_request(1000);
        let (mut recv, opening) = ReceiverSession::start(&recv_ws, config);
        let mut send = SenderSession::new(send_ws, 8);
        pump(&mut recv, &mut recv_ws, &mut send, opening).expect("pump");
        assert!(recv.is_done());
        assert_eq!(
            recv.plan(),
            Some(TransferPlan::Reconciled {
                summary: SummaryId::BLOOM
            })
        );
        // Gained symbols ⊆ fresh, and nearly all of fresh (Bloom FPs may
        // withhold a few).
        assert!(recv.gained() as usize <= fresh.len());
        assert!(
            recv.gained() as usize > fresh.len() * 9 / 10,
            "gained {} of {}",
            recv.gained(),
            fresh.len()
        );
        for id in &fresh {
            if recv_ws.contains(*id) {
                assert_eq!(
                    recv_ws.payload(*id).expect("present").as_ref(),
                    &id.to_le_bytes()
                );
            }
        }
    }

    #[test]
    fn art_plan_for_small_differences() {
        let shared = ids(3000, 4);
        let fresh = ids(30, 5); // 1 % difference → ART territory
        let mut recv_ws = working(&shared);
        let mut sender_ids = shared.clone();
        sender_ids.extend(fresh.iter().copied());
        let send_ws = working(&sender_ids);
        let config = SessionConfig::new().with_request(100);
        let (mut recv, opening) = ReceiverSession::start(&recv_ws, config);
        let mut send = SenderSession::new(send_ws, 9);
        pump(&mut recv, &mut recv_ws, &mut send, opening).expect("pump");
        assert!(recv.is_done());
        assert_eq!(
            recv.plan(),
            Some(TransferPlan::Reconciled {
                summary: SummaryId::ART
            })
        );
        assert!(recv.gained() > 0, "ART transfer should deliver something");
        // Everything gained is genuinely fresh.
        for id in &shared {
            assert!(recv_ws.contains(*id));
        }
    }

    #[test]
    fn speculative_transfer_for_weak_clients() {
        let shared = ids(400, 6);
        let fresh = ids(400, 7);
        let mut recv_ws = working(&shared);
        let mut sender_ids = shared.clone();
        sender_ids.extend(fresh.iter().copied());
        let send_ws = working(&sender_ids);
        let config = SessionConfig::new()
            .with_request(2000)
            .with_knobs(PolicyKnobs {
                fine_grained_capable: false,
                ..PolicyKnobs::default()
            });
        let (mut recv, opening) = ReceiverSession::start(&recv_ws, config);
        let mut send = SenderSession::new(send_ws, 10);
        pump(&mut recv, &mut recv_ws, &mut send, opening).expect("pump");
        assert!(recv.is_done());
        assert!(matches!(recv.plan(), Some(TransferPlan::Speculative { .. })));
        assert!(
            recv.gained() as usize > fresh.len() / 2,
            "recoded stream should deliver a good share: {}",
            recv.gained()
        );
        // Payload integrity through recoded XOR paths.
        for id in fresh.iter().filter(|id| recv_ws.contains(**id)) {
            assert_eq!(
                recv_ws.payload(*id).expect("present").as_ref(),
                &id.to_le_bytes()
            );
        }
    }

    #[test]
    fn protocol_violations_are_errors() {
        let ws = working(&ids(10, 11));
        let (mut recv, _) = ReceiverSession::start(&ws, SessionConfig::default());
        let mut ws2 = ws.clone();
        let err = recv.on_message(&mut ws2, &Message::SymbolRequest { count: 1 });
        assert!(matches!(err, Err(SessionError::UnexpectedMessage { .. })));
        let mut send = SenderSession::new(ws, 12);
        let err = send.on_message(&Message::End { sent: 0 });
        assert!(matches!(err, Err(SessionError::UnexpectedMessage { .. })));
    }

    #[test]
    fn summary_override_does_not_bypass_admission_control() {
        // §4: an identical peer is rejected even when a sweep pins a
        // mechanism — no digest is built for a provably useless sender.
        let shared = ids(500, 40);
        let mut recv_ws = working(&shared);
        let send_ws = working(&shared);
        let config = SessionConfig::new().with_summary(SummaryId::WHOLE_SET);
        let (mut recv, opening) = ReceiverSession::start(&recv_ws, config);
        let mut send = SenderSession::new(send_ws, 41);
        pump(&mut recv, &mut recv_ws, &mut send, opening).expect("pump");
        assert!(recv.was_rejected());
        assert_eq!(recv.plan(), Some(TransferPlan::Reject));
        assert_eq!(recv.gained(), 0);
    }

    #[test]
    fn receiver_build_failure_leaves_the_machine_intact() {
        // An override naming an unregistered mechanism errors on the
        // peer sketch — and the machine stays in AwaitPeerSketch with no
        // plan, so a corrected retry (or clean teardown) is possible.
        let recv_ws = working(&ids(200, 30));
        let send_ws = working(&ids(200, 31));
        let config = SessionConfig::new().with_summary(SummaryId(0x8001));
        let (mut recv, _) = ReceiverSession::start(&recv_ws, config);
        let mut ws = recv_ws.clone();
        let peer = Message::Minwise(send_ws.sketch().clone());
        let err = recv.on_message(&mut ws, &peer);
        assert_eq!(err, Err(SessionError::UnknownSummary { id: 0x8001 }));
        assert!(recv.plan().is_none(), "no plan may be committed");
        // Still awaiting a sketch: the same message is not "unexpected".
        let err = recv.on_message(&mut ws, &peer);
        assert_eq!(err, Err(SessionError::UnknownSummary { id: 0x8001 }));
    }

    #[test]
    fn unknown_and_malformed_summaries_are_errors() {
        let shared = ids(100, 20);
        let mut send = SenderSession::new(working(&shared), 21);
        let recv_ws = working(&shared);
        let _ = send
            .on_message(&Message::Minwise(recv_ws.sketch().clone()))
            .expect("sketch accepted");
        // An id outside the registry.
        let err = send.on_message(&Message::Summary {
            summary_id: 0x7777,
            body: vec![],
        });
        assert_eq!(err, Err(SessionError::UnknownSummary { id: 0x7777 }));
        // A registered id with a garbage body.
        let err = send.on_message(&Message::Summary {
            summary_id: SummaryId::BLOOM.0,
            body: vec![1, 2, 3],
        });
        assert!(matches!(err, Err(SessionError::MalformedSummary(_))));
    }

    #[test]
    fn request_bounds_the_stream() {
        let mut recv_ws = working(&ids(100, 13));
        let send_ws = working(&ids(500, 14)); // disjoint
        let config = SessionConfig::new().with_request(50);
        let (mut recv, opening) = ReceiverSession::start(&recv_ws, config);
        let mut send = SenderSession::new(send_ws, 15);
        pump(&mut recv, &mut recv_ws, &mut send, opening).expect("pump");
        assert!(recv.is_done());
        assert!(recv.gained() <= 50);
        assert!(recv.gained() >= 45, "gained {}", recv.gained());
    }
}
