//! The protocol's summary surface: the `icd-summary` trait API plus the
//! standard registry, re-exported as one front door.
//!
//! Everything a deployment needs to work with fine-grained summaries
//! lives behind this module:
//!
//! * [`SetSummary`] / [`Reconciler`] — the two traits every mechanism
//!   implements (receiver-side digest, sender-side diff).
//! * [`SummaryId`] — the stable wire identifier; sessions, policy, the
//!   overlay simulator, and the experiment grid all dispatch on it.
//! * [`SummaryRegistry`] / [`SummarySpec`] — id → constructor/decoder/
//!   cost-advisor mapping. [`standard_registry`] holds the five shipped
//!   mechanisms (whole-set, hash-set, char-poly, bloom, art).
//! * [`SummarySizing`] / [`DiffEstimate`] — the inputs constructors and
//!   cost advisors consume.
//!
//! # Registering a new summary
//!
//! A new mechanism plugs in without touching sessions, policy, or the
//! wire layer:
//!
//! 1. Implement [`Reconciler`] and [`SetSummary`] for your digest type
//!    in its home crate (depend on `icd-summary` only).
//! 2. Write a `spec()` returning a [`SummarySpec`]: pick an unused
//!    [`SummaryId`] (ids ≥ `SummaryId::FIRST_PRIVATE` are never assigned
//!    by this workspace), and provide `build`, `decode`, and the three
//!    analytic advisors (`wire_cost`, `compute_cost`, `expected_recall`)
//!    that [`crate::policy::plan_transfer`] scores.
//! 3. Register it: `let mut reg = standard_registry(); reg.register(spec())?;`
//!    and hand the registry to [`crate::SessionConfig::with_registry`]
//!    (receiver) and [`crate::SenderSession::with_registry`] (sender).
//!
//! The mechanism then travels in the generic `Message::Summary` wire
//! frame, is eligible for policy selection, and can be swept by the
//! experiment grid exactly like the built-ins.

use std::sync::{Arc, OnceLock};

use icd_sketch::OverlapEstimate;

pub use icd_recon::registry::{shared_registry, standard_registry};
pub use icd_summary::{
    DiffEstimate, Reconciler, SetSummary, SummaryError, SummaryId, SummaryRegistry, SummarySizing,
    SummarySpec,
};

/// A process-wide `Arc` of the [`standard_registry`], the default for
/// [`crate::SessionConfig`] and [`crate::SenderSession`].
#[must_use]
pub fn standard_registry_arc() -> Arc<SummaryRegistry> {
    static SHARED: OnceLock<Arc<SummaryRegistry>> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(standard_registry())))
}

/// Converts a sketch-exchange estimate into the [`DiffEstimate`] the
/// summary constructors and cost advisors consume. Directions follow the
/// session roles: `self` = A = the summarizing receiver, peer = B = the
/// candidate sender whose set gets searched.
#[must_use]
pub fn diff_estimate(estimate: &OverlapEstimate) -> DiffEstimate {
    let expected_new =
        (estimate.useful_fraction_of_b() * estimate.size_b() as f64).round() as usize;
    DiffEstimate::new(
        estimate.size_a() as usize,
        estimate.size_b() as usize,
        expected_new,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_arc_is_shared_and_complete() {
        let a = standard_registry_arc();
        let b = standard_registry_arc();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn diff_estimate_directions() {
        // A = 1000, B = 1300, r such that B∖A ≈ 300.
        let est = OverlapEstimate::from_resemblance(1000.0 / 1300.0, 1000, 1300);
        let d = diff_estimate(&est);
        assert_eq!(d.summarized, 1000);
        assert_eq!(d.searched, 1300);
        assert!((d.expected_new as i64 - 300).abs() <= 2, "got {}", d.expected_new);
        assert!(d.expected_delta >= d.expected_new);
    }
}
