//! Registry-wide round-trip property: for every registered mechanism,
//! `build → encode → decode` yields a reconciler whose answers match the
//! original digest on arbitrary key sets — the contract that makes the
//! generic wire frame safe to dispatch on.

use icd_core::summary::{standard_registry, DiffEstimate, SummarySizing};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]
    #[test]
    fn every_mechanism_roundtrips_membership(
        shared in proptest::collection::vec(any::<u64>(), 10..200),
        foreign in proptest::collection::vec(any::<u64>(), 1..60),
    ) {
        let registry = standard_registry();
        let sizing = SummarySizing::default();
        // Summarize `shared`; probe with shared ∪ foreign.
        let mut keys = shared.clone();
        keys.sort_unstable();
        keys.dedup();
        let mut probes: Vec<u64> = keys.iter().chain(foreign.iter()).copied().collect();
        probes.sort_unstable();
        probes.dedup();
        let est = DiffEstimate::new(keys.len(), probes.len(), foreign.len());
        for spec in registry.iter() {
            let digest = (spec.build)(&sizing, &est, &keys);
            let body = digest.encode_body();
            let decoded = (spec.decode)(&body)
                .unwrap_or_else(|e| panic!("{}: decode failed: {e}", spec.id));
            prop_assert_eq!(decoded.id(), spec.id);
            // Same membership answers: the decoded reconciler's diff of
            // any probe set equals the original digest's.
            let before = digest.missing_at_peer(&probes);
            let after = decoded.missing_at_peer(&probes);
            prop_assert_eq!(&before, &after, "{} diverged after roundtrip", spec.id);
            // One-sided error: nothing summarized is ever reported
            // missing (up to the mechanism's documented collisions —
            // none at these sizes for the shipped five).
            for k in &keys {
                prop_assert!(
                    !after.contains(k),
                    "{} reported a summarized key {k} as missing", spec.id
                );
            }
            // Membership probes bound the diff from above: every id the
            // reconciler reports missing must also fail (or be
            // unanswerable by) the per-key probe, so the two views never
            // contradict. (ART's search can prune before reaching a
            // missing leaf, so the probe count may exceed the diff; the
            // reverse would be a bug.)
            prop_assert!(
                digest.estimated_difference(&probes) >= after.len(),
                "{} probe count below its own diff", spec.id
            );
        }
    }
}
