//! Property test for the sans-I/O machine layer: any interleaving of
//! frame-level `step` orderings across two independent session pairs
//! must leave each pair exactly where the batch message-level [`pump`]
//! leaves its twin — same plan, same gain, same final working set, same
//! wire bytes. Extends the step-vs-batch equality pinned for
//! `SessionPump` in `session_pump.rs` to the event-driven API.

use bytes::Bytes;
use icd_core::machine::{FramePump, ReceiverMachine, SenderMachine, SessionAction};
use icd_core::{pump_observed, ReceiverSession, SenderSession, SessionConfig, WorkingSet};
use icd_fountain::EncodedSymbol;
use icd_util::rng::{Rng64, Xoshiro256StarStar};
use proptest::prelude::*;

fn sym(id: u64) -> EncodedSymbol {
    EncodedSymbol {
        id,
        payload: Bytes::from(id.to_le_bytes().to_vec()),
    }
}

fn ids(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

fn overlapping_sets(
    shared: usize,
    receiver_extra: usize,
    sender_extra: usize,
    salt: u64,
) -> (WorkingSet, WorkingSet) {
    let shared_ids = ids(shared, 0xAB ^ salt);
    let r_extra = ids(receiver_extra, 0xCD ^ salt);
    let s_extra = ids(sender_extra, 0xEF ^ salt);
    let receiver =
        WorkingSet::from_symbols(shared_ids.iter().chain(r_extra.iter()).map(|&id| sym(id)));
    let sender =
        WorkingSet::from_symbols(shared_ids.iter().chain(s_extra.iter()).map(|&id| sym(id)));
    (receiver, sender)
}

/// One scenario's reference run through the batch message pump.
struct BatchOutcome {
    gained: u64,
    final_ids: Vec<u64>,
    wire_bytes: u64,
}

fn batch_reference(scenario: &Scenario) -> BatchOutcome {
    let (mut ws, sender_ws) =
        overlapping_sets(scenario.shared, scenario.recv_extra, scenario.send_extra, scenario.salt);
    let config = SessionConfig::new()
        .with_request(scenario.request)
        .with_seed(scenario.session_seed);
    let (mut session, opening) = ReceiverSession::start(&ws, config);
    let mut sender = SenderSession::new(sender_ws, scenario.sender_seed);
    let mut wire_bytes = 0u64;
    pump_observed(&mut session, &mut ws, &mut sender, opening, |msg| {
        wire_bytes += msg.frame_len() as u64;
    })
    .expect("batch pump");
    BatchOutcome {
        gained: session.gained(),
        final_ids: ws.sorted_ids(),
        wire_bytes,
    }
}

#[derive(Clone, Copy)]
struct Scenario {
    shared: usize,
    recv_extra: usize,
    send_extra: usize,
    request: u64,
    session_seed: u64,
    sender_seed: u64,
    salt: u64,
}

fn machines_for(scenario: &Scenario) -> (ReceiverMachine, SenderMachine) {
    let (ws, sender_ws) =
        overlapping_sets(scenario.shared, scenario.recv_extra, scenario.send_extra, scenario.salt);
    let config = SessionConfig::new()
        .with_request(scenario.request)
        .with_seed(scenario.session_seed);
    (
        ReceiverMachine::new(ws, config),
        SenderMachine::new(sender_ws, scenario.sender_seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_step_interleaving_matches_the_batch_pump(
        shared in 50usize..250,
        recv_extra in 5usize..60,
        send_extra in 20usize..120,
        request in 20u64..150,
        salt in any::<u64>(),
        schedule in proptest::collection::vec(any::<bool>(), 0..96),
    ) {
        let scenario_a = Scenario {
            shared,
            recv_extra,
            send_extra,
            request,
            session_seed: 0xA5A5 ^ salt,
            sender_seed: 0x0F0F ^ salt,
            salt,
        };
        // A second, differently shaped pair sharing the scheduler.
        let scenario_b = Scenario {
            shared: shared / 2 + 10,
            recv_extra: send_extra / 2 + 1,
            send_extra: recv_extra + 15,
            request: request / 2 + 5,
            session_seed: 0x5A5A ^ salt,
            sender_seed: 0xF0F0 ^ salt,
            salt: salt.rotate_left(17),
        };
        let expect_a = batch_reference(&scenario_a);
        let expect_b = batch_reference(&scenario_b);

        let (mut recv_a, mut send_a) = machines_for(&scenario_a);
        let (mut recv_b, mut send_b) = machines_for(&scenario_b);
        let mut pump_a = FramePump::new();
        let mut pump_b = FramePump::new();
        let mut actions_a = Vec::new();
        let mut actions_b = Vec::new();
        pump_a.start(&mut recv_a, &mut send_a, &mut actions_a).expect("start a");
        pump_b.start(&mut recv_b, &mut send_b, &mut actions_b).expect("start b");

        // The generated schedule chooses which pair steps next; once it
        // runs out, round-robin until both pairs are quiescent. Each
        // step moves at most one frame per direction, so the schedule
        // genuinely permutes delivery order between the pairs.
        let mut cursor = 0usize;
        let mut guard = 0u32;
        while !(pump_a.is_idle() && pump_b.is_idle()) {
            let pick_a = schedule.get(cursor).copied().unwrap_or(cursor.is_multiple_of(2));
            cursor += 1;
            if pick_a {
                pump_a.step(&mut recv_a, &mut send_a, &mut actions_a).expect("step a");
            } else {
                pump_b.step(&mut recv_b, &mut send_b, &mut actions_b).expect("step b");
            }
            guard += 1;
            prop_assert!(guard < 200_000, "interleaved driver must terminate");
        }

        for (label, recv, pump, actions, expect) in [
            ("a", &recv_a, &pump_a, &actions_a, &expect_a),
            ("b", &recv_b, &pump_b, &actions_b, &expect_b),
        ] {
            prop_assert!(recv.is_finished(), "pair {label} unfinished");
            prop_assert_eq!(recv.gained(), expect.gained, "gain mismatch in pair {}", label);
            prop_assert_eq!(
                &recv.working().sorted_ids(),
                &expect.final_ids,
                "working-set mismatch in pair {}",
                label
            );
            let (to_sender, to_receiver) = pump.wire_bytes();
            prop_assert_eq!(
                to_sender + to_receiver,
                expect.wire_bytes,
                "wire-byte mismatch in pair {}",
                label
            );
            // SymbolDecoded actions enumerate exactly the gained ids.
            let decoded = actions
                .iter()
                .filter(|a| matches!(a, SessionAction::SymbolDecoded(_)))
                .count() as u64;
            prop_assert_eq!(decoded, expect.gained, "decode actions in pair {}", label);
        }
    }
}

#[test]
fn machine_layer_and_legacy_pump_share_one_protocol() {
    // Deterministic smoke of the same equivalence outside the proptest
    // harness: the two APIs speak byte-identical protocol.
    let scenario = Scenario {
        shared: 400,
        recv_extra: 50,
        send_extra: 150,
        request: 120,
        session_seed: 0x1CD,
        sender_seed: 0xB0B,
        salt: 0,
    };
    let expect = batch_reference(&scenario);
    let (mut recv, mut send) = machines_for(&scenario);
    let mut pump = FramePump::new();
    pump.run(&mut recv, &mut send).expect("machine run");
    assert_eq!(recv.gained(), expect.gained);
    assert_eq!(recv.working().sorted_ids(), expect.final_ids);
    let (ts, tr) = pump.wire_bytes();
    assert_eq!(ts + tr, expect.wire_bytes);
}
