//! Session round-trips over the in-memory pump: both transfer plans
//! (reconciled and speculative) must carry the receiver to its request
//! target, the plan chosen must match the policy configuration, and —
//! the registry contract — every registered summary mechanism must
//! carry a session end to end when pinned by id.

use bytes::Bytes;
use icd_core::summary::{standard_registry, SummaryId};
use icd_core::{
    pump, PolicyKnobs, ReceiverSession, SenderSession, SessionConfig, TransferPlan, WorkingSet,
};
use icd_fountain::EncodedSymbol;
use icd_util::rng::{Rng64, Xoshiro256StarStar};

fn sym(id: u64) -> EncodedSymbol {
    EncodedSymbol {
        id,
        payload: Bytes::from(id.to_le_bytes().to_vec()),
    }
}

fn ids(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Overlapping working sets: receiver holds the first `shared + own`
/// ids, sender holds the `shared` ids plus `fresh` ids of its own.
fn overlapping_sets(shared: usize, receiver_extra: usize, sender_extra: usize) -> (WorkingSet, WorkingSet) {
    let shared_ids = ids(shared, 0xAB);
    let r_extra = ids(receiver_extra, 0xCD);
    let s_extra = ids(sender_extra, 0xEF);
    let receiver = WorkingSet::from_symbols(
        shared_ids.iter().chain(r_extra.iter()).map(|&id| sym(id)),
    );
    let sender = WorkingSet::from_symbols(
        shared_ids.iter().chain(s_extra.iter()).map(|&id| sym(id)),
    );
    (receiver, sender)
}

#[test]
fn reconciled_plan_reaches_the_request_target() {
    let (mut receiver_ws, sender_ws) = overlapping_sets(1_500, 300, 600);
    let before = receiver_ws.len();
    let request = 200u64; // comfortably below the true difference (600)
    let config = SessionConfig {
        request,
        knobs: PolicyKnobs {
            fine_grained_capable: true,
            ..PolicyKnobs::default()
        },
        ..SessionConfig::default()
    };
    let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
    let mut sender = SenderSession::new(sender_ws, 0x5EED);
    pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("clean session");

    assert!(session.is_done());
    assert!(
        matches!(session.plan(), Some(TransferPlan::Reconciled { .. })),
        "capable peers at this overlap must reconcile, got {:?}",
        session.plan()
    );
    assert!(
        session.gained() >= request,
        "reconciled transfer fell short: gained {} of {request}",
        session.gained()
    );
    assert_eq!(receiver_ws.len() as u64, before as u64 + session.gained());
}

#[test]
fn speculative_plan_reaches_the_target_over_repeated_sessions() {
    // A recoded (speculative) session resolves only the packets whose
    // components land close enough to the receiver's working set, so a
    // single fixed-size request gains a fraction of what it asked for.
    // The protocol's model is repetition: the receiver keeps opening
    // sessions until satisfied. The target here is the full difference.
    let (mut receiver_ws, sender_ws) = overlapping_sets(1_500, 300, 600);
    let start = receiver_ws.len();
    let difference = 600usize;
    // Target: 90 % of the sender's useful symbols. The last few percent
    // are genuinely unreachable by sketches — once the remaining
    // difference is a handful of keys, the min-wise estimate reads
    // "identical" and admission control correctly rejects the session.
    let target = start + difference * 9 / 10;
    let mut first_plan = None;
    for session_no in 1..=60u64 {
        let config = SessionConfig {
            request: 400,
            knobs: PolicyKnobs {
                // A client without fine-grained machinery: policy must
                // fall back to recoded (speculative) transfer.
                fine_grained_capable: false,
                ..PolicyKnobs::default()
            },
            seed: 0x5E55_1014 + session_no,
            ..SessionConfig::default()
        };
        let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
        let mut sender = SenderSession::new(sender_ws.clone(), 0xF00D + session_no);
        pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("clean session");
        if first_plan.is_none() {
            first_plan = session.plan();
        }
        if session.was_rejected() || receiver_ws.len() >= target {
            break;
        }
    }
    assert!(
        matches!(first_plan, Some(TransferPlan::Speculative { .. })),
        "incapable peers must go speculative, got {first_plan:?}"
    );
    assert!(
        receiver_ws.len() >= target,
        "speculative sessions stalled at {} of target {target}",
        receiver_ws.len()
    );
}

#[test]
fn every_registered_summary_carries_a_session_end_to_end() {
    // The acceptance bar for the trait API: whole-set, hash-set,
    // char-poly, bloom, and art all drive the *same* session machines
    // over the *same* generic wire frame, selected purely by SummaryId.
    for mechanism in standard_registry().ids() {
        let (mut receiver_ws, sender_ws) = overlapping_sets(400, 40, 80);
        let sender_ids: std::collections::HashSet<u64> = sender_ws.ids().collect();
        let before: std::collections::HashSet<u64> = receiver_ws.ids().collect();
        let true_diff = sender_ids.difference(&before).count() as u64;
        let config = SessionConfig::new()
            .with_request(200)
            .with_summary(mechanism)
            .with_seed(0x1D ^ u64::from(mechanism.0));
        let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
        let mut sender = SenderSession::new(sender_ws, 0xBEEF ^ u64::from(mechanism.0));
        pump(&mut session, &mut receiver_ws, &mut sender, opening)
            .unwrap_or_else(|e| panic!("{mechanism}: session failed: {e}"));
        assert!(session.is_done(), "{mechanism}: session did not finish");
        assert_eq!(
            session.plan(),
            Some(TransferPlan::Reconciled { summary: mechanism }),
            "{mechanism}: plan must carry the pinned id"
        );
        assert!(
            session.gained() > 0,
            "{mechanism}: no symbols moved end-to-end"
        );
        assert!(
            session.gained() <= true_diff,
            "{mechanism}: gained {} exceeds the true difference {true_diff}",
            session.gained()
        );
        // Exact mechanisms deliver the full difference; approximate ones
        // must clear a usable share (one-sided error only withholds).
        let exact = mechanism == SummaryId::WHOLE_SET || mechanism == SummaryId::CHAR_POLY;
        if exact {
            assert_eq!(
                session.gained(),
                true_diff,
                "{mechanism}: exact mechanism fell short"
            );
        } else {
            assert!(
                session.gained() * 2 >= true_diff,
                "{mechanism}: cleared only {} of {true_diff}",
                session.gained()
            );
        }
        // One-sided error: everything gained came from the sender.
        for id in receiver_ws.ids() {
            if !before.contains(&id) {
                assert!(sender_ids.contains(&id), "{mechanism}: alien symbol {id}");
            }
        }
    }
}

#[test]
fn both_plans_deliver_only_authentic_novel_symbols() {
    for fine_grained in [true, false] {
        let (mut receiver_ws, sender_ws) = overlapping_sets(800, 150, 400);
        let before: std::collections::HashSet<u64> = receiver_ws.ids().collect();
        let sender_ids: std::collections::HashSet<u64> = sender_ws.ids().collect();
        let config = SessionConfig {
            request: 100,
            knobs: PolicyKnobs {
                fine_grained_capable: fine_grained,
                ..PolicyKnobs::default()
            },
            ..SessionConfig::default()
        };
        let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
        let mut sender = SenderSession::new(sender_ws, 7);
        pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("clean session");
        assert!(session.gained() > 0);
        for s in receiver_ws.symbols() {
            if !before.contains(&s.id) {
                assert!(
                    sender_ids.contains(&s.id),
                    "gained symbol {} not from the sender (fine_grained={fine_grained})",
                    s.id
                );
                assert_eq!(
                    s.payload,
                    sym(s.id).payload,
                    "payload corrupted in transit (fine_grained={fine_grained})"
                );
            }
        }
    }
}
