//! Session round-trips over the in-memory pump: both transfer plans
//! (reconciled and speculative) must carry the receiver to its request
//! target, the plan chosen must match the policy configuration, and —
//! the registry contract — every registered summary mechanism must
//! carry a session end to end when pinned by id.

use bytes::Bytes;
use icd_core::summary::{standard_registry, SummaryId};
use icd_core::{
    pump, PolicyKnobs, PumpStep, ReceiverSession, SenderSession, SessionConfig, SessionPump,
    TransferPlan, WorkingSet,
};
use icd_fountain::EncodedSymbol;
use icd_util::rng::{Rng64, Xoshiro256StarStar};

fn sym(id: u64) -> EncodedSymbol {
    EncodedSymbol {
        id,
        payload: Bytes::from(id.to_le_bytes().to_vec()),
    }
}

fn ids(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Overlapping working sets: receiver holds the first `shared + own`
/// ids, sender holds the `shared` ids plus `fresh` ids of its own.
fn overlapping_sets(shared: usize, receiver_extra: usize, sender_extra: usize) -> (WorkingSet, WorkingSet) {
    let shared_ids = ids(shared, 0xAB);
    let r_extra = ids(receiver_extra, 0xCD);
    let s_extra = ids(sender_extra, 0xEF);
    let receiver = WorkingSet::from_symbols(
        shared_ids.iter().chain(r_extra.iter()).map(|&id| sym(id)),
    );
    let sender = WorkingSet::from_symbols(
        shared_ids.iter().chain(s_extra.iter()).map(|&id| sym(id)),
    );
    (receiver, sender)
}

#[test]
fn reconciled_plan_reaches_the_request_target() {
    let (mut receiver_ws, sender_ws) = overlapping_sets(1_500, 300, 600);
    let before = receiver_ws.len();
    let request = 200u64; // comfortably below the true difference (600)
    let config = SessionConfig {
        request,
        knobs: PolicyKnobs {
            fine_grained_capable: true,
            ..PolicyKnobs::default()
        },
        ..SessionConfig::default()
    };
    let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
    let mut sender = SenderSession::new(sender_ws, 0x5EED);
    pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("clean session");

    assert!(session.is_done());
    assert!(
        matches!(session.plan(), Some(TransferPlan::Reconciled { .. })),
        "capable peers at this overlap must reconcile, got {:?}",
        session.plan()
    );
    assert!(
        session.gained() >= request,
        "reconciled transfer fell short: gained {} of {request}",
        session.gained()
    );
    assert_eq!(receiver_ws.len() as u64, before as u64 + session.gained());
}

#[test]
fn speculative_plan_reaches_the_target_over_repeated_sessions() {
    // A recoded (speculative) session resolves only the packets whose
    // components land close enough to the receiver's working set, so a
    // single fixed-size request gains a fraction of what it asked for.
    // The protocol's model is repetition: the receiver keeps opening
    // sessions until satisfied. The target here is the full difference.
    let (mut receiver_ws, sender_ws) = overlapping_sets(1_500, 300, 600);
    let start = receiver_ws.len();
    let difference = 600usize;
    // Target: 90 % of the sender's useful symbols. The last few percent
    // are genuinely unreachable by sketches — once the remaining
    // difference is a handful of keys, the min-wise estimate reads
    // "identical" and admission control correctly rejects the session.
    let target = start + difference * 9 / 10;
    let mut first_plan = None;
    for session_no in 1..=60u64 {
        let config = SessionConfig {
            request: 400,
            knobs: PolicyKnobs {
                // A client without fine-grained machinery: policy must
                // fall back to recoded (speculative) transfer.
                fine_grained_capable: false,
                ..PolicyKnobs::default()
            },
            seed: 0x5E55_1014 + session_no,
            ..SessionConfig::default()
        };
        let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
        let mut sender = SenderSession::new(sender_ws.clone(), 0xF00D + session_no);
        pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("clean session");
        if first_plan.is_none() {
            first_plan = session.plan();
        }
        if session.was_rejected() || receiver_ws.len() >= target {
            break;
        }
    }
    assert!(
        matches!(first_plan, Some(TransferPlan::Speculative { .. })),
        "incapable peers must go speculative, got {first_plan:?}"
    );
    assert!(
        receiver_ws.len() >= target,
        "speculative sessions stalled at {} of target {target}",
        receiver_ws.len()
    );
}

#[test]
fn every_registered_summary_carries_a_session_end_to_end() {
    // The acceptance bar for the trait API: whole-set, hash-set,
    // char-poly, bloom, and art all drive the *same* session machines
    // over the *same* generic wire frame, selected purely by SummaryId.
    for mechanism in standard_registry().ids() {
        let (mut receiver_ws, sender_ws) = overlapping_sets(400, 40, 80);
        let sender_ids: std::collections::HashSet<u64> = sender_ws.ids().collect();
        let before: std::collections::HashSet<u64> = receiver_ws.ids().collect();
        let true_diff = sender_ids.difference(&before).count() as u64;
        let config = SessionConfig::new()
            .with_request(200)
            .with_summary(mechanism)
            .with_seed(0x1D ^ u64::from(mechanism.0));
        let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
        let mut sender = SenderSession::new(sender_ws, 0xBEEF ^ u64::from(mechanism.0));
        pump(&mut session, &mut receiver_ws, &mut sender, opening)
            .unwrap_or_else(|e| panic!("{mechanism}: session failed: {e}"));
        assert!(session.is_done(), "{mechanism}: session did not finish");
        assert_eq!(
            session.plan(),
            Some(TransferPlan::Reconciled { summary: mechanism }),
            "{mechanism}: plan must carry the pinned id"
        );
        assert!(
            session.gained() > 0,
            "{mechanism}: no symbols moved end-to-end"
        );
        assert!(
            session.gained() <= true_diff,
            "{mechanism}: gained {} exceeds the true difference {true_diff}",
            session.gained()
        );
        // Exact mechanisms deliver the full difference; approximate ones
        // must clear a usable share (one-sided error only withholds).
        let exact = mechanism == SummaryId::WHOLE_SET || mechanism == SummaryId::CHAR_POLY;
        if exact {
            assert_eq!(
                session.gained(),
                true_diff,
                "{mechanism}: exact mechanism fell short"
            );
        } else {
            assert!(
                session.gained() * 2 >= true_diff,
                "{mechanism}: cleared only {} of {true_diff}",
                session.gained()
            );
        }
        // One-sided error: everything gained came from the sender.
        for id in receiver_ws.ids() {
            if !before.contains(&id) {
                assert!(sender_ids.contains(&id), "{mechanism}: alien symbol {id}");
            }
        }
    }
}

#[test]
fn poll_style_stepping_matches_the_batch_pump_exactly() {
    // Two identical session pairs: one driven by the blocking-style
    // batch pump, one a message at a time through the poll API. Same
    // delivery counts, same plan, same gained symbols.
    let make = || {
        let (receiver_ws, sender_ws) = overlapping_sets(900, 100, 300);
        let config = SessionConfig::new().with_request(250).with_seed(0xAA);
        let (session, opening) = ReceiverSession::start(&receiver_ws, config);
        let sender = SenderSession::new(sender_ws, 0xBB);
        (receiver_ws, session, sender, opening)
    };
    let (mut ws_batch, mut recv_batch, mut send_batch, opening_batch) = make();
    let counts_batch =
        pump(&mut recv_batch, &mut ws_batch, &mut send_batch, opening_batch).expect("batch");

    let (mut ws_step, mut recv_step, mut send_step, opening_step) = make();
    let mut queues = SessionPump::new(opening_step);
    let mut steps = 0u64;
    while queues
        .step(&mut recv_step, &mut ws_step, &mut send_step)
        .expect("step")
        == PumpStep::Progressed
    {
        steps += 1;
        assert!(steps < 100_000, "step driver must terminate");
    }
    assert!(queues.is_idle());
    assert_eq!(queues.delivered(), counts_batch);
    assert_eq!(recv_step.plan(), recv_batch.plan());
    assert_eq!(recv_step.gained(), recv_batch.gained());
    assert_eq!(ws_step.len(), ws_batch.len());
    // Once idle, further steps stay idle without blocking or erroring.
    for _ in 0..3 {
        assert_eq!(
            queues
                .step(&mut recv_step, &mut ws_step, &mut send_step)
                .expect("idle step"),
            PumpStep::Idle
        );
    }
}

#[test]
fn independent_sessions_interleave_one_message_at_a_time() {
    // The event-driven shape: a scheduler round-robins single steps of
    // two unrelated sessions. Each must finish exactly as it would have
    // run alone — no cross-talk through the poll API.
    let solo = |seed: u64| {
        let (mut ws, sender_ws) = overlapping_sets(600, 50, 200);
        let config = SessionConfig::new().with_request(150).with_seed(seed);
        let (mut session, opening) = ReceiverSession::start(&ws, config);
        let mut sender = SenderSession::new(sender_ws, seed ^ 0xF0);
        pump(&mut session, &mut ws, &mut sender, opening).expect("solo");
        (session.gained(), ws.len())
    };
    let expect_a = solo(0x01);
    let expect_b = solo(0x02);

    let start = |seed: u64| {
        let (ws, sender_ws) = overlapping_sets(600, 50, 200);
        let config = SessionConfig::new().with_request(150).with_seed(seed);
        let (session, opening) = ReceiverSession::start(&ws, config);
        let sender = SenderSession::new(sender_ws, seed ^ 0xF0);
        (ws, session, sender, SessionPump::new(opening))
    };
    let (mut ws_a, mut recv_a, mut send_a, mut pump_a) = start(0x01);
    let (mut ws_b, mut recv_b, mut send_b, mut pump_b) = start(0x02);
    loop {
        let a = pump_a.step(&mut recv_a, &mut ws_a, &mut send_a).expect("a");
        let b = pump_b.step(&mut recv_b, &mut ws_b, &mut send_b).expect("b");
        if a == PumpStep::Idle && b == PumpStep::Idle {
            break;
        }
    }
    assert_eq!((recv_a.gained(), ws_a.len()), expect_a);
    assert_eq!((recv_b.gained(), ws_b.len()), expect_b);
}

#[test]
fn both_plans_deliver_only_authentic_novel_symbols() {
    for fine_grained in [true, false] {
        let (mut receiver_ws, sender_ws) = overlapping_sets(800, 150, 400);
        let before: std::collections::HashSet<u64> = receiver_ws.ids().collect();
        let sender_ids: std::collections::HashSet<u64> = sender_ws.ids().collect();
        let config = SessionConfig {
            request: 100,
            knobs: PolicyKnobs {
                fine_grained_capable: fine_grained,
                ..PolicyKnobs::default()
            },
            ..SessionConfig::default()
        };
        let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
        let mut sender = SenderSession::new(sender_ws, 7);
        pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("clean session");
        assert!(session.gained() > 0);
        for s in receiver_ws.symbols() {
            if !before.contains(&s.id) {
                assert!(
                    sender_ids.contains(&s.id),
                    "gained symbol {} not from the sender (fine_grained={fine_grained})",
                    s.id
                );
                assert_eq!(
                    s.payload,
                    sym(s.id).payload,
                    "payload corrupted in transit (fine_grained={fine_grained})"
                );
            }
        }
    }
}
