//! Connection migration under churn: the §2.3 statelessness claim,
//! demonstrated. A receiver is forcibly re-peered every few hundred
//! packets; with encoded content and per-connection handshakes the
//! transfer carries straight on — compare the informed and oblivious
//! strategies' total cost under increasingly violent churn.
//!
//! Run with: `cargo run --release --example churn_migration`

use icd_overlay::churn::{run_with_migration, MigrationConfig};
use icd_overlay::scenario::ScenarioParams;
use icd_overlay::strategy::StrategyKind;
use icd_summary::SummaryId;

fn main() {
    let n = 6_000usize;
    let params = ScenarioParams::compact(n, 0xC4A0);
    println!("compact system, n = {n}; sender pool of 4 overlapping peers\n");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12}",
        "migration interval", "strategy", "overhead", "migrations", "handshakes"
    );
    println!("{}", "-".repeat(74));
    for interval in [u64::MAX, 400, 100, 25] {
        for strategy in [
            StrategyKind::Random,
            StrategyKind::RandomSummary(SummaryId::BLOOM),
            StrategyKind::RecodeSummary(SummaryId::BLOOM),
        ] {
            let out = run_with_migration(
                &params,
                strategy,
                MigrationConfig {
                    migration_interval: interval,
                    sender_pool: 4,
                },
                7,
            );
            let label = if interval == u64::MAX {
                "none".to_string()
            } else {
                format!("every {interval}")
            };
            println!(
                "{:<22} {:>10} {:>12.3} {:>12} {:>12}",
                label,
                strategy.label(),
                out.transfer.overhead(),
                out.migrations,
                out.handshakes,
            );
            assert!(out.transfer.completed, "transfer must survive churn");
        }
        println!();
    }
    println!(
        "informed strategies pay one cheap handshake per migration and keep\n\
         overhead near 1.0; the oblivious baseline pays the coupon-collector\n\
         price regardless — exactly the contrast §2.2/§2.3 argue."
    );
}
