//! Parallel download from a full sender plus a partial sender (the
//! Figure 6 setting), comparing all five §6.2 strategies at one
//! correlation point — the interactive, single-run companion to the
//! `fig6` harness binary. Both runs are `OverlayNet` presets (a 2-node
//! line, and the line plus a fountain link); see the `mesh_download`
//! example for topologies beyond the classic figures.
//!
//! Run with: `cargo run --release --example parallel_download [correlation]`

use icd_overlay::scenario::{ScenarioParams, TwoPeerScenario};
use icd_overlay::strategy::StrategyKind;
use icd_overlay::transfer::{run_transfer, run_with_full_sender};

fn main() {
    let correlation: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let n = 8_000usize;
    let params = ScenarioParams::compact(n, 0xD0_CA7);
    let scenario = TwoPeerScenario::build(&params, correlation);
    println!(
        "compact system: n = {n}, target = {} distinct symbols, correlation = {:.2}",
        scenario.target, scenario.correlation
    );
    println!(
        "receiver starts with {}, needs {} more; partial sender holds {}\n",
        scenario.receiver_set.len(),
        scenario.needed(),
        scenario.sender_set.len()
    );

    println!("{:<12} {:>18} {:>14} {:>12}", "strategy", "p2p overhead", "p2p packets", "speedup*");
    println!("{}", "-".repeat(60));
    for strategy in StrategyKind::ALL {
        let p2p = run_transfer(&scenario, strategy, 1);
        let combined = run_with_full_sender(&scenario, strategy, 1);
        println!(
            "{:<12} {:>18.3} {:>14} {:>12.3}",
            strategy.label(),
            p2p.overhead(),
            p2p.packets_from_partial,
            combined.speedup(),
        );
    }
    println!("\n* download rate with full+partial sender, relative to the full sender alone");
    println!("  (2.0 = the partial sender contributes as much as a second full sender)");
}
