//! Mesh parallel download on the `OverlayNet` engine: scenarios the
//! classic pairwise loops could not run.
//!
//! A receiver reconciles with k neighbors *concurrently* — each link's
//! summary mechanism chosen per link by the registry cost advisors from
//! the endpoints' calling cards — over heterogeneous links (a fast one,
//! a half-rate one, a laggy one, a lossy one), while the seeders
//! simultaneously reconcile among themselves over a background ring:
//! every seeder uploads on one link and downloads on another at the
//! same time, the multi-role behaviour §2 of the paper claims for
//! adaptive overlays.
//!
//! Run with: `cargo run --release --example mesh_download [k]`

use icd_overlay::net::{run_mesh_download, Link};
use icd_overlay::scenario::ScenarioParams;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let n = 8_000usize;
    let params = ScenarioParams::compact(n, 0x0E5B);
    let profiles = [
        Link::default(),
        Link::slower(2),
        Link {
            interval: 1,
            latency: 8,
            loss: 0.0,
        },
        Link::lossy(0.10),
    ];
    println!(
        "mesh download: compact n = {n}, {k} concurrent neighbors + seeder ring,\n\
         link profiles cycled over [1×/0ms/0%, ½×/0ms/0%, 1×/8-tick/0%, 1×/0ms/10%]\n"
    );
    let columns = [
        "family", "done", "speedup", "overhead", "lost", "ring gained", "events",
    ];
    println!(
        "{:<18} {:>5} {:>10} {:>10} {:>8} {:>12} {:>10}  per-link summaries",
        columns[0], columns[1], columns[2], columns[3], columns[4], columns[5], columns[6]
    );
    println!("{}", "-".repeat(100));
    for (family, recode) in [("Random/summary", false), ("Recode/summary", true)] {
        let out = run_mesh_download(&params, k, 0.2, &profiles, recode, 7);
        // Recoded streams must ride through the lossy link; the one-shot
        // candidate walk (Random/summary) honestly may not — candidates
        // dropped on the lossy link are gone for good.
        if recode {
            assert!(out.transfer.completed, "{family} mesh failed");
        }
        let labels: Vec<&str> = out.summaries.iter().map(|s| s.label()).collect();
        println!(
            "{:<18} {:>5} {:>10.3} {:>10.3} {:>8} {:>12} {:>10}  {}",
            family,
            if out.transfer.completed { "yes" } else { "no" },
            out.transfer.speedup(),
            out.transfer.overhead(),
            out.packets_lost,
            out.seeder_gained,
            out.events,
            labels.join(","),
        );
    }
    println!(
        "\nspeedup is relative to a lone full sender; the advisors pick each\n\
         link's digest from the advertised wire/compute/recall costs. The\n\
         lossy link's drops are absorbed by the *recoded* stream (no ARQ\n\
         anywhere), while the one-shot candidate walk loses those symbols\n\
         for good — exactly the §2 robustness argument for encoded content."
    );
}
