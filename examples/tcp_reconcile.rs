//! Two peers reconciling over a real TCP connection on localhost: the
//! session state machines from `icd-core` driven by the length-prefixed
//! framing from `icd-wire`. Demonstrates that the protocol layer is
//! transport-agnostic and that the control exchange really is a handful
//! of small packets (sizes printed).
//!
//! Run with: `cargo run --release --example tcp_reconcile`

use icd_core::{ReceiverSession, SenderSession, SessionConfig, WorkingSet};
use icd_fountain::{EncodedSymbol, Encoder};
use icd_wire::framing::{read_frame, write_frame, FrameError, FrameLimit};
use std::net::{TcpListener, TcpStream};

fn main() {
    let content: Vec<u8> = (0..128 * 1024).map(|i| (i * 13 % 251) as u8).collect();
    let encoder = Encoder::for_content(&content, 1400, 3);
    let l = encoder.spec().num_blocks();
    let universe: Vec<EncodedSymbol> = encoder.stream(5).take(l * 14 / 10).collect();
    let cut = universe.len() * 6 / 10;
    let receiver_symbols: Vec<EncodedSymbol> = universe[..cut].to_vec();
    let sender_symbols: Vec<EncodedSymbol> = universe[universe.len() - cut..].to_vec();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // Sender side on its own thread, like a remote peer.
    let sender_thread = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        serve(stream, sender_symbols);
    });

    // Receiver side: connect, run the session, count bytes.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut working = WorkingSet::from_symbols(receiver_symbols);
    let before = working.len();
    let config = SessionConfig::new().with_request((l / 2) as u64);
    let (mut session, opening) = ReceiverSession::start(&working, config);
    let mut control_bytes = 0usize;
    let mut data_bytes = 0usize;
    for msg in &opening {
        control_bytes += msg.encoded_size();
        write_frame(&mut stream, msg).expect("send opening");
    }
    while !(session.is_done() || session.was_rejected()) {
        let msg = match read_frame(&mut stream, FrameLimit::default()) {
            Ok(m) => m,
            Err(FrameError::Closed) => break,
            Err(e) => panic!("transport error: {e}"),
        };
        match &msg {
            icd_wire::Message::EncodedSymbol { .. } | icd_wire::Message::RecodedSymbol { .. } => {
                data_bytes += msg.encoded_size();
            }
            _ => control_bytes += msg.encoded_size(),
        }
        let replies = session.on_message(&mut working, &msg).expect("protocol");
        for reply in &replies {
            control_bytes += reply.encoded_size();
            write_frame(&mut stream, reply).expect("send");
        }
    }
    drop(stream);
    sender_thread.join().expect("sender thread");

    println!("TCP reconciliation on {addr}:");
    println!("  plan            : {:?}", session.plan().expect("plan"));
    println!("  symbols before  : {before}");
    println!("  symbols after   : {} (+{})", working.len(), session.gained());
    println!("  control traffic : {control_bytes} bytes (sketches, summary, request)");
    println!("  data traffic    : {data_bytes} bytes");
    assert!(session.gained() > 0, "transfer should have moved symbols");
    assert!(
        control_bytes < 64 * 1024,
        "control plane must stay a handful of KB"
    );
}

/// The sender loop: feed inbound frames to the state machine, write its
/// replies, exit when the stream closes or the session completes.
fn serve(mut stream: TcpStream, symbols: Vec<EncodedSymbol>) {
    let working = WorkingSet::from_symbols(symbols);
    let mut session = SenderSession::new(working, 17);
    loop {
        let msg = match read_frame(&mut stream, FrameLimit::default()) {
            Ok(m) => m,
            Err(FrameError::Closed) => return,
            Err(e) => panic!("sender transport error: {e}"),
        };
        let replies = session.on_message(&msg).expect("sender protocol");
        for reply in &replies {
            write_frame(&mut stream, reply).expect("sender write");
        }
        if session.is_done() {
            return;
        }
    }
}
