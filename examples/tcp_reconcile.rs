//! Two peers reconciling over a real TCP connection on localhost: the
//! same sans-I/O session machines the sim engine pumps, here driven by
//! the blocking stream drivers from `icd-core`. Demonstrates that the
//! protocol layer is transport-agnostic and that the byte counters are
//! wire-exact — every number printed is a framed length (4-byte prefix
//! included), not a payload approximation.
//!
//! Run with: `cargo run --release --example tcp_reconcile`

use icd_core::machine::{drive_receiver, drive_sender, ReceiverMachine, SenderMachine};
use icd_core::{SessionConfig, WorkingSet};
use icd_fountain::{EncodedSymbol, Encoder};
use icd_wire::framing::FrameLimit;
use std::net::{TcpListener, TcpStream};

fn main() {
    let content: Vec<u8> = (0..128 * 1024).map(|i| (i * 13 % 251) as u8).collect();
    let encoder = Encoder::for_content(&content, 1400, 3);
    let l = encoder.spec().num_blocks();
    let universe: Vec<EncodedSymbol> = encoder.stream(5).take(l * 14 / 10).collect();
    let cut = universe.len() * 6 / 10;
    let receiver_symbols: Vec<EncodedSymbol> = universe[..cut].to_vec();
    let sender_symbols: Vec<EncodedSymbol> = universe[universe.len() - cut..].to_vec();

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // Sender side on its own thread, like a remote peer: the identical
    // machine the sim engine runs, behind a blocking driver.
    let sender_thread = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let working = WorkingSet::from_symbols(sender_symbols);
        let mut machine = SenderMachine::new(working, 17);
        let stats = drive_sender(&mut machine, &mut stream, FrameLimit::default())
            .expect("sender drive");
        (stats, machine.streamed())
    });

    // Receiver side: connect, run the machine, read the wire counters.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let working = WorkingSet::from_symbols(receiver_symbols);
    let before = working.len();
    let config = SessionConfig::new().with_request((l / 2) as u64);
    let mut machine = ReceiverMachine::new(working, config);
    let stats =
        drive_receiver(&mut machine, &mut stream, FrameLimit::default()).expect("receiver drive");
    drop(stream);
    let (sender_stats, streamed) = sender_thread.join().expect("sender thread");

    let gained = machine.gained();
    let plan = machine.plan().expect("plan");
    let after = machine.working().len();
    println!("TCP reconciliation on {addr}:");
    println!("  plan            : {plan:?}");
    println!("  symbols before  : {before}");
    println!("  symbols after   : {after} (+{gained})");
    println!(
        "  control traffic : {} bytes in {} frames (sketches, summary, request, end)",
        stats.control_bytes, stats.frames
    );
    println!("  data traffic    : {} bytes", stats.data_bytes);
    println!("  total wire      : {} bytes", stats.total());
    assert!(gained > 0, "transfer should have moved symbols");
    assert_eq!(streamed, gained, "sender streamed what the receiver gained");
    // Both ends counted the same frames; their totals must agree exactly.
    assert_eq!(
        stats.total(),
        sender_stats.total(),
        "receiver and sender wire counters diverged"
    );
    assert!(
        stats.control_bytes < 64 * 1024,
        "control plane must stay a handful of KB"
    );
}
