//! Two peers reconciling over a real TCP connection on localhost —
//! now a thin invocation of `icd-node`'s connection drivers, the very
//! code path the peer daemon runs: a [`Hello`] preamble carrying the
//! link seed, then one §3 session pumped by the blocking drivers, with
//! every decoded symbol landing in a [`SharedWorkingSet`]. Every number
//! printed is a framed wire length (4-byte prefix included), and the
//! hello is excluded from the counters on both ends, so receiver and
//! sender totals must agree exactly.
//!
//! Run with: `cargo run --release --example tcp_reconcile`

use icd_core::{SessionConfig, WorkingSet};
use icd_fountain::{EncodedSymbol, Encoder};
use icd_node::{fetch_session, serve_session, Hello, SessionEpoch, SharedWorkingSet};
use icd_overlay::session_machine_seeds;
use std::net::{TcpListener, TcpStream};

fn main() {
    let content: Vec<u8> = (0..128 * 1024).map(|i| (i * 13 % 251) as u8).collect();
    let encoder = Encoder::for_content(&content, 1400, 3);
    let l = encoder.spec().num_blocks();
    let universe: Vec<EncodedSymbol> = encoder.stream(5).take(l * 14 / 10).collect();
    let cut = universe.len() * 6 / 10;
    let receiver_symbols: Vec<EncodedSymbol> = universe[..cut].to_vec();
    let sender_symbols: Vec<EncodedSymbol> = universe[universe.len() - cut..].to_vec();

    // One link seed in the hello; both machine seeds derive from it,
    // exactly as the daemon and the simulator do.
    let link_seed = 0x1CD0_0017;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // Serving peer on its own thread, like a remote daemon: read the
    // hello, derive the sender seed, serve one session.
    let sender_thread = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let hello = Hello::read_from(&mut stream).expect("hello");
        let (_, sender_seed) = session_machine_seeds(hello.seed);
        let working = WorkingSet::from_symbols(sender_symbols);
        serve_session(&mut stream, working, sender_seed).expect("serve session")
    });

    // Fetching peer: hello first, then the session; decoded symbols
    // land in the shared set the way a daemon's many sessions share one.
    let mut stream = TcpStream::connect(addr).expect("connect");
    Hello {
        dialer: 1,
        seed: link_seed,
        epoch: SessionEpoch::Live,
    }
    .write_to(&mut stream)
    .expect("hello");
    let snapshot = WorkingSet::from_symbols(receiver_symbols);
    let before = snapshot.len();
    let shared = SharedWorkingSet::new(snapshot.clone(), universe.len());
    let (receiver_seed, _) = session_machine_seeds(link_seed);
    let config = SessionConfig::new()
        .with_request((l / 2) as u64)
        .with_seed(receiver_seed);
    let outcome = fetch_session(&mut stream, snapshot, config, &shared).expect("fetch session");
    drop(stream);
    let sender_stats = sender_thread.join().expect("sender thread");

    let stats = outcome.stats;
    let after = shared.distinct();
    println!("TCP reconciliation on {addr}:");
    println!("  symbols before  : {before}");
    println!("  symbols after   : {after} (+{})", outcome.gained);
    println!(
        "  control traffic : {} bytes in {} frames (sketches, summary, request, end)",
        stats.control_bytes, stats.frames
    );
    println!("  data traffic    : {} bytes", stats.data_bytes);
    println!("  total wire      : {} bytes", stats.total());
    assert!(!outcome.rejected, "sketches clearly differ; no rejection");
    assert!(outcome.gained > 0, "transfer should have moved symbols");
    assert_eq!(
        after,
        before + outcome.gained as usize,
        "shared set gained exactly the fresh symbols"
    );
    // Both ends counted the same frames; their totals must agree exactly.
    assert_eq!(
        stats.total(),
        sender_stats.stats.total(),
        "receiver and sender wire counters diverged"
    );
    assert!(
        stats.control_bytes < 64 * 1024,
        "control plane must stay a handful of KB"
    );
}
