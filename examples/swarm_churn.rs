//! A power-law swarm under membership churn: the paper's *adaptive
//! overlay* setting at swarm scale.
//!
//! Hundreds of peers over a preferential-attachment topology reconcile
//! with their neighbors concurrently while the roster churns — 10% of
//! the peers leave mid-download and rejoin later (advertising, thanks
//! to refresh-on-reconnect, every symbol they gained before leaving),
//! new peers join with fresh working sets, and random peers migrate
//! links. Connection maintenance re-handshakes exhausted or stagnant
//! links on a fixed cadence; everything replays byte-identically from
//! the seed.
//!
//! Run with: `cargo run --release --example swarm_churn [peers]`

use icd_swarm::{
    run_swarm, ChurnConfig, Link, SwarmConfig, SwarmStrategy, TopologyKind,
};

fn main() {
    let peers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let blocks = 80;
    println!("== {peers}-peer power-law swarm, n={blocks} blocks, 10% churn ==\n");
    for (label, strategy) in [
        ("Random/BF", SwarmStrategy::Fixed(icd_overlay::strategy::StrategyKind::RandomSummary(
            icd_summary::SummaryId::BLOOM,
        ))),
        ("advised (recode)", SwarmStrategy::Advised { recode: true }),
    ] {
        let cfg = SwarmConfig::new(peers, blocks, TopologyKind::PowerLaw { m: 2 })
            .with_strategy(strategy)
            .with_link_profiles(vec![Link::default(), Link::slower(2), Link::slower(4)])
            .with_churn(ChurnConfig {
                leave_fraction: 0.10,
                downtime: 40,
                window: (5, 100),
                joins: peers / 50,
                rewires: peers / 25,
            });
        let out = run_swarm(cfg, 0x1CD_5744);
        println!(
            "{label:>18}: {}/{} complete in {} ticks ({:?}) — overhead {:.3}, \
             {} events, churn J{}/L{}/R{}/W{}, {} maintenance reconnects",
            out.completed,
            out.peers,
            out.ticks,
            out.stop,
            out.overhead,
            out.events,
            out.joins,
            out.leaves,
            out.rejoins,
            out.rewires,
            out.reconnects,
        );
    }
}
