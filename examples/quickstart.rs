//! Quickstart: encode a file with the digital fountain, let two peers
//! with partially overlapping working sets reconcile (sketch → plan →
//! summary → informed transfer), and decode the file at the receiver.
//!
//! Run with: `cargo run --release --example quickstart`

use icd_core::{pump, ReceiverSession, SenderSession, SessionConfig, WorkingSet};
use icd_fountain::{DecodeStatus, Decoder, EncodedSymbol, Encoder};

fn main() {
    // A 256 KB "file" of synthetic content, split into 1400-byte blocks
    // (the paper's block size for its 32 MB reference file).
    let content: Vec<u8> = (0..256 * 1024).map(|i| (i * 31 % 251) as u8).collect();
    let encoder = Encoder::for_content(&content, 1400, 42);
    let l = encoder.spec().num_blocks();
    println!("content: {} bytes → {} source blocks of 1400 B", content.len(), l);

    // The universe of encoded symbols floating around the overlay:
    // 1.4·l distinct symbols, produced by one fountain stream.
    let universe: Vec<EncodedSymbol> = encoder.stream(7).take(l * 14 / 10).collect();

    // The receiver holds the first 60 %, the sender the last 60 % —
    // a substantial but incomplete overlap, like two peers that joined
    // a multicast session at different times.
    let cut = universe.len() * 6 / 10;
    let mut receiver_ws = WorkingSet::from_symbols(universe[..cut].iter().cloned());
    let sender_ws = WorkingSet::from_symbols(universe[universe.len() - cut..].iter().cloned());
    println!(
        "receiver: {} symbols, sender: {} symbols",
        receiver_ws.len(),
        sender_ws.len()
    );

    // One reconciliation session: the receiver's sketch goes out, the
    // plan is scored over the summary registry from the estimated
    // overlap, the winning digest crosses the wire in the generic
    // tagged frame, and the sender streams only symbols the receiver
    // lacks.
    let config = SessionConfig::new().with_request((l + l / 10) as u64); // ask for everything we might need
    let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
    let mut sender = SenderSession::new(sender_ws, 99);
    let (msgs_to_sender, msgs_to_receiver) =
        pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("session");
    println!(
        "session: plan {:?}, gained {} new symbols ({} msgs →sender, {} →receiver)",
        session.plan().expect("plan chosen"),
        session.gained(),
        msgs_to_sender,
        msgs_to_receiver
    );

    // Decode the file from the receiver's (now larger) working set.
    let mut decoder = Decoder::new(encoder.spec().clone());
    let mut complete = false;
    for symbol in receiver_ws.symbols() {
        if matches!(decoder.receive(&symbol), DecodeStatus::Complete) {
            complete = true;
            break;
        }
    }
    assert!(complete, "working set should now suffice to decode");
    let decoded = decoder.into_content(content.len()).expect("complete");
    assert_eq!(decoded, content, "byte-exact reconstruction");
    println!("decoded {} bytes — byte-exact ✓", decoded.len());
}
