//! The paper's Figure 1 motivation, replayed in the simulator: a content
//! delivery tree S → {A, B} → {C, D, E} where downstream nodes hold
//! fragmented, partially overlapping working sets. Compares three ways
//! for node C to finish its download:
//!
//!   (a) tree only          — keep pulling from its single parent;
//!   (b) parallel downloads — add a second connection to the source;
//!   (c) collaborative      — add "perpendicular" connections to peers
//!                            D and E, reconciled with Bloom filters.
//!
//! Run with: `cargo run --release --example cdn_scenario`

use icd_overlay::receiver::Receiver;
use icd_overlay::scenario::ScenarioParams;
use icd_overlay::strategy::{FullSender, ReceiverHandshake, Sender, StrategyKind};
use icd_overlay::transfer::{handshake_estimate, run_loop, standard_sizing};
use icd_recon::shared_registry;
use icd_sketch::PermutationFamily;
use icd_summary::SummaryId;
use icd_util::hash::mix64;

fn main() {
    // Working-set geometry from Figure 1's caption: C, D, E each hold
    // 25 % of the content's symbol requirement, pairwise disjoint where
    // possible (C and D explicitly disjoint).
    let n = 8_000usize; // source blocks
    let params = ScenarioParams::compact(n, 0xF161);
    let target = params.target();
    let quarter = target / 4;
    let ids = |lo: usize, hi: usize| -> Vec<u64> {
        (lo..hi)
            .map(|i| mix64(0xF161 ^ i as u64) & !icd_overlay::strategy::FRESH_ID_BIT)
            .collect()
    };
    let c_set = ids(0, quarter);
    // D and E are better-provisioned peers (like A and B one tier up in
    // Figure 1): each holds ~45 % of the requirement, D disjoint from C,
    // E overlapping D by half — complementary but not identical sets.
    let rich = (target * 45) / 100;
    let d_set = ids(quarter, quarter + rich); // disjoint from C
    let e_set = ids(quarter + rich / 2, quarter + rich / 2 + rich); // overlaps D by half

    let family = PermutationFamily::standard(0x1CD);
    let tree_rate_limit = 4; // C's path from S is bottlenecked 4:1 vs peer links

    // (a) Tree only: C pulls fresh fountain symbols from S, but its
    // parent path delivers only one useful symbol every `tree_rate_limit`
    // ticks (model: S sends once per tick, C's link admits 1/4 of them —
    // equivalently the transfer needs 4× the ticks).
    let needed = target - c_set.len();
    let tree_ticks = needed as u64 * tree_rate_limit;

    // (b) Parallel download: two independent fountain streams from S,
    // both bottlenecked; twice the rate.
    let parallel_ticks = needed as u64 * tree_rate_limit / 2;

    // (c) Collaborative: the bottlenecked parent PLUS perpendicular
    // full-rate connections to D and E with Bloom-reconciled transfers.
    let mut receiver = Receiver::new(&c_set, target);
    let strategy = StrategyKind::RandomSummary(SummaryId::BLOOM);
    let handshake = ReceiverHandshake::for_strategy(
        strategy,
        &c_set,
        &standard_sizing(),
        &family,
        shared_registry(),
        &handshake_estimate(c_set.len(), d_set.len(), needed),
    );
    let per_peer = needed / 2;
    let mut peers = vec![
        Sender::new(strategy, d_set, &handshake, &family, shared_registry(), 1, per_peer),
        Sender::new(strategy, e_set, &handshake, &family, shared_registry(), 2, per_peer),
    ];
    // The parent still trickles fresh symbols: model its 1/4 rate by
    // letting it send on every 4th tick via a full sender we gate below.
    let mut parent = FullSender::new(0);
    let mut ticks = 0u64;
    while !receiver.is_complete() && ticks < tree_ticks * 2 {
        ticks += 1;
        if ticks.is_multiple_of(tree_rate_limit) {
            let p = parent.next_packet();
            receiver.receive(&p);
        }
        let mut all_dry = true;
        for peer in &mut peers {
            if let Some(p) = peer.next_packet() {
                all_dry = false;
                receiver.receive(&p);
                if receiver.is_complete() {
                    break;
                }
            }
        }
        if all_dry && !ticks.is_multiple_of(tree_rate_limit) && receiver.pending_recoded() == 0 {
            // Peers exhausted their useful symbols; only the parent
            // trickle remains.
        }
        let _ = run_loop; // (see icd-overlay::transfer for the general loop)
    }
    let collaborative_ticks = ticks;

    println!("Figure 1 scenario — node C completing its download (n = {n}):");
    println!("  (a) tree only            : {tree_ticks:>8} ticks");
    println!("  (b) + parallel download  : {parallel_ticks:>8} ticks  ({:.2}x)",
        tree_ticks as f64 / parallel_ticks as f64);
    println!("  (c) + collaboration (D,E): {collaborative_ticks:>8} ticks  ({:.2}x)",
        tree_ticks as f64 / collaborative_ticks as f64);
    println!();
    println!(
        "collaborative transfer complete: {} — perpendicular bandwidth between \
         peers with complementary working sets dominates the bottlenecked tree path",
        receiver.is_complete()
    );
    assert!(collaborative_ticks < parallel_ticks, "collaboration must win");
}
