//! End-to-end integration: encode → estimate → reconcile → transfer →
//! decode, across every crate in the workspace.

use icd_core::{pump, PolicyKnobs, ReceiverSession, SenderSession, SessionConfig, WorkingSet};
use icd_fountain::{DecodeStatus, Decoder, EncodedSymbol, Encoder};
use icd_util::rng::{Rng64, SplitMix64};

fn content(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
}

/// Splits a symbol universe into two overlapping working sets.
fn split_universe(
    universe: &[EncodedSymbol],
    receiver_share: f64,
    sender_share: f64,
) -> (WorkingSet, WorkingSet) {
    let r_cut = (universe.len() as f64 * receiver_share) as usize;
    let s_cut = universe.len() - (universe.len() as f64 * sender_share) as usize;
    (
        WorkingSet::from_symbols(universe[..r_cut].iter().cloned()),
        WorkingSet::from_symbols(universe[s_cut..].iter().cloned()),
    )
}

#[test]
fn reconcile_then_decode_byte_exact() {
    let data = content(100_000, 1);
    let encoder = Encoder::for_content(&data, 500, 2);
    let l = encoder.spec().num_blocks();
    let universe: Vec<EncodedSymbol> = encoder.stream(3).take(l * 3 / 2).collect();
    let (mut receiver_ws, sender_ws) = split_universe(&universe, 0.6, 0.6);

    let config = SessionConfig::new().with_request((l + l / 5) as u64);
    let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
    let mut sender = SenderSession::new(sender_ws, 4);
    pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("session");
    assert!(session.is_done());
    assert!(session.gained() > 0);

    let mut decoder = Decoder::new(encoder.spec().clone());
    let mut complete = false;
    for sym in receiver_ws.symbols() {
        if matches!(decoder.receive(&sym), DecodeStatus::Complete) {
            complete = true;
            break;
        }
    }
    assert!(complete, "post-reconciliation working set must decode");
    assert_eq!(decoder.into_content(data.len()).expect("complete"), data);
}

#[test]
fn transferred_payloads_are_authentic() {
    // Every symbol the receiver gains must be byte-identical to the
    // encoder's ground truth for that id.
    let data = content(30_000, 5);
    let encoder = Encoder::for_content(&data, 300, 6);
    let l = encoder.spec().num_blocks();
    let universe: Vec<EncodedSymbol> = encoder.stream(7).take(l * 2).collect();
    let (mut receiver_ws, sender_ws) = split_universe(&universe, 0.5, 0.7);
    let before: std::collections::HashSet<u64> = receiver_ws.ids().collect();

    let (mut session, opening) = ReceiverSession::start(
        &receiver_ws,
        SessionConfig::new().with_request(l as u64),
    );
    let mut sender = SenderSession::new(sender_ws, 8);
    pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("session");

    let mut checked = 0;
    for sym in receiver_ws.symbols() {
        if !before.contains(&sym.id) {
            assert_eq!(sym.payload, encoder.symbol(sym.id).payload, "id {}", sym.id);
            checked += 1;
        }
    }
    assert!(checked > 0, "some symbols should have moved");
}

#[test]
fn admission_control_spends_only_control_packets() {
    let data = content(20_000, 9);
    let encoder = Encoder::for_content(&data, 200, 10);
    let universe: Vec<EncodedSymbol> = encoder.stream(11).take(150).collect();
    let mut a = WorkingSet::from_symbols(universe.iter().cloned());
    let b = WorkingSet::from_symbols(universe.iter().cloned());
    let (mut session, opening) = ReceiverSession::start(&a, SessionConfig::default());
    let mut sender = SenderSession::new(b, 12);
    let (to_sender, to_receiver) = pump(&mut session, &mut a, &mut sender, opening).expect("pump");
    assert!(session.was_rejected());
    assert_eq!(session.gained(), 0);
    assert!(to_sender + to_receiver <= 3, "rejection must be cheap");
}

#[test]
fn speculative_path_decodes_too() {
    // Weak-client path: recoded symbols only, still ends in a decode.
    let data = content(40_000, 13);
    let encoder = Encoder::for_content(&data, 400, 14);
    let l = encoder.spec().num_blocks();
    let universe: Vec<EncodedSymbol> = encoder.stream(15).take(l * 2).collect();
    let (mut receiver_ws, sender_ws) = split_universe(&universe, 0.55, 0.9);
    let config = SessionConfig::new()
        .with_request((l * 3) as u64)
        .with_knobs(PolicyKnobs {
            fine_grained_capable: false,
            ..PolicyKnobs::default()
        });
    let (mut session, opening) = ReceiverSession::start(&receiver_ws, config);
    let mut sender = SenderSession::new(sender_ws, 16);
    pump(&mut session, &mut receiver_ws, &mut sender, opening).expect("session");
    assert!(matches!(
        session.plan(),
        Some(icd_core::TransferPlan::Speculative { .. })
    ));
    let mut decoder = Decoder::new(encoder.spec().clone());
    let mut complete = false;
    for sym in receiver_ws.symbols() {
        if matches!(decoder.receive(&sym), DecodeStatus::Complete) {
            complete = true;
            break;
        }
    }
    assert!(complete, "speculative transfer must still enable decode");
    assert_eq!(decoder.into_content(data.len()).expect("done"), data);
}
