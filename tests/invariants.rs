//! Property-based tests on the core data-structure invariants that the
//! informed-delivery protocol relies on, exercised across crates.

use icd_art::{search_differences, ArtParams, ArtSummary, ReconciliationTree, SummaryParams};
use icd_bloom::BloomFilter;
use icd_fountain::{DecodeStatus, Decoder, Encoder};
use icd_sketch::{MinwiseSketch, PermutationFamily};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bloom filters never produce false negatives — the property that
    /// guarantees reconciled transfers never ship redundant symbols.
    #[test]
    fn bloom_no_false_negatives(keys in proptest::collection::hash_set(any::<u64>(), 1..600)) {
        let mut filter = BloomFilter::with_bits_per_element(keys.len(), 6.0, 99);
        for &k in &keys {
            filter.insert(k);
        }
        for &k in &keys {
            prop_assert!(filter.contains(k));
        }
    }

    /// ART difference search is one-sided: every reported key is a true
    /// element of S_B ∖ S_A.
    #[test]
    fn art_reported_differences_are_true(
        shared in proptest::collection::hash_set(any::<u64>(), 1..400),
        fresh in proptest::collection::hash_set(any::<u64>(), 1..60),
    ) {
        let shared: HashSet<u64> = shared.difference(&fresh).copied().collect();
        prop_assume!(!shared.is_empty());
        let params = ArtParams::default();
        let a = ReconciliationTree::from_keys(params, shared.iter().copied());
        let b = ReconciliationTree::from_keys(
            params,
            shared.iter().chain(fresh.iter()).copied(),
        );
        let summary = ArtSummary::build(&a, SummaryParams::with_split(8.0, 4.0, 3));
        let out = search_differences(&b, &summary);
        for k in &out.missing_at_peer {
            prop_assert!(fresh.contains(k), "reported {k} is not a true difference");
        }
    }

    /// Identical sets always produce identical min-wise sketches and
    /// resemblance exactly 1.
    #[test]
    fn minwise_identity(keys in proptest::collection::hash_set(any::<u64>(), 1..300)) {
        let family = PermutationFamily::new(5, 32);
        let a = MinwiseSketch::from_keys(&family, keys.iter().copied());
        let mut shuffled: Vec<u64> = keys.iter().copied().collect();
        shuffled.reverse();
        let b = MinwiseSketch::from_keys(&family, shuffled);
        prop_assert_eq!(a.resemblance(&b), 1.0);
    }

    /// The fountain decode is exact for arbitrary content and geometry.
    #[test]
    fn fountain_roundtrip(
        content in proptest::collection::vec(any::<u8>(), 1..3000),
        block_size in 16usize..200,
        seed in any::<u64>(),
    ) {
        let encoder = Encoder::for_content(&content, block_size, seed);
        let mut decoder = Decoder::new(encoder.spec().clone());
        let mut done = false;
        for sym in encoder.stream(seed ^ 1) {
            if matches!(decoder.receive(&sym), DecodeStatus::Complete) {
                done = true;
                break;
            }
            // Safety net: peeling over a random stream converges fast.
            prop_assert!(
                decoder.stats().received < 60 * encoder.spec().num_blocks() as u64 + 600,
                "decoder failed to converge"
            );
        }
        prop_assert!(done);
        prop_assert_eq!(decoder.into_content(content.len()).unwrap(), content);
    }

    /// The exact polynomial method recovers the exact difference whenever
    /// the bound is respected.
    #[test]
    fn charpoly_exactness(
        shared in proptest::collection::hash_set(any::<u64>(), 1..120),
        a_only in proptest::collection::hash_set(any::<u64>(), 0..10),
        b_only in proptest::collection::hash_set(any::<u64>(), 0..10),
    ) {
        use icd_recon::poly::{key_to_field, reconcile, CharPolySketch};
        let a_only: HashSet<u64> = a_only.difference(&shared).copied().collect();
        let b_only: HashSet<u64> = b_only
            .difference(&shared)
            .copied()
            .collect::<HashSet<_>>()
            .difference(&a_only)
            .copied()
            .collect();
        let a: Vec<u64> = shared.iter().chain(a_only.iter()).copied().collect();
        let b: Vec<u64> = shared.iter().chain(b_only.iter()).copied().collect();
        let sketch = CharPolySketch::build(&a, 24);
        let diff = reconcile(&sketch, &b).expect("within bound");
        let expect_ab: HashSet<u64> = a_only.iter().map(|&k| key_to_field(k)).collect();
        let expect_ba: HashSet<u64> = b_only.iter().map(|&k| key_to_field(k)).collect();
        prop_assert_eq!(diff.a_minus_b.into_iter().collect::<HashSet<_>>(), expect_ab);
        prop_assert_eq!(diff.b_minus_a.into_iter().collect::<HashSet<_>>(), expect_ba);
    }
}

/// Cross-structure agreement: Bloom, ART, and the exact methods must
/// never contradict each other on what is "definitely missing".
#[test]
fn reconciliation_methods_agree_on_one_sidedness() {
    use icd_recon::cost::{measure_all, Scenario};
    for seed in [1u64, 2, 3] {
        let scenario = Scenario::generate(3000, 80, seed);
        let report = measure_all(&scenario, 200);
        for row in &report.rows {
            assert!(!row.false_reports, "{} produced false reports", row.method);
        }
    }
}
