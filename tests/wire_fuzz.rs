//! Property-based tests on the wire format: total decoding (no panics on
//! arbitrary bytes) and lossless round-trips for arbitrary messages.

use icd_wire::{Message, WireError};
use proptest::prelude::*;

proptest! {
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Must return Ok or Err, never panic or loop.
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn symbol_request_roundtrip(count in any::<u64>()) {
        let msg = Message::SymbolRequest { count };
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn encoded_symbol_roundtrip(id in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let msg = Message::EncodedSymbol { id, payload: bytes::Bytes::from(payload) };
        // decode copies; decode_from views — both must round-trip.
        prop_assert_eq!(Message::decode_from(&bytes::Bytes::from(msg.encode())).unwrap(), msg.clone());
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn recoded_symbol_roundtrip(
        components in proptest::collection::vec(any::<u64>(), 1..64),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let msg = Message::RecodedSymbol { components, payload: bytes::Bytes::from(payload) };
        prop_assert_eq!(Message::decode_from(&bytes::Bytes::from(msg.encode())).unwrap(), msg.clone());
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn truncation_always_detected(
        components in proptest::collection::vec(any::<u64>(), 1..16),
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = Message::RecodedSymbol { components, payload: bytes::Bytes::from(vec![7; 32]) };
        let bytes = msg.encode();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            prop_assert!(Message::decode(&bytes[..cut]).is_err());
            prop_assert!(Message::decode_from(&bytes::Bytes::copy_from_slice(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn trailing_garbage_always_detected(extra in 1usize..16) {
        let mut bytes = Message::SymbolRequest { count: 7 }.encode();
        bytes.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid(_)) | Err(WireError::Truncated)
        ));
    }
}

#[test]
fn framing_roundtrip_over_in_memory_stream() {
    use icd_wire::framing::{read_frame, write_frame, FrameLimit};
    let msgs = vec![
        Message::SymbolRequest { count: 1 },
        Message::EncodedSymbol {
            id: 2,
            payload: bytes::Bytes::from(vec![3; 100]),
        },
        Message::End { sent: 1 },
    ];
    let mut buf = Vec::new();
    for m in &msgs {
        write_frame(&mut buf, m).expect("write");
    }
    let mut cursor = std::io::Cursor::new(buf);
    for m in &msgs {
        assert_eq!(&read_frame(&mut cursor, FrameLimit::default()).expect("read"), m);
    }
}
