//! Property-based tests on the wire format: total decoding (no panics on
//! arbitrary bytes), lossless round-trips for arbitrary messages, and a
//! malformed-frame corpus for the framing layer — oversized length
//! prefixes, mid-frame truncation, unknown tags — all of which must
//! surface as typed errors, never panics or unbounded allocation.

use icd_wire::framing::{read_frame, write_frame, FrameError, FrameLimit};
use icd_wire::{Message, WireError};
use proptest::prelude::*;

proptest! {
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Must return Ok or Err, never panic or loop.
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn symbol_request_roundtrip(count in any::<u64>()) {
        let msg = Message::SymbolRequest { count };
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn encoded_symbol_roundtrip(id in any::<u64>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let msg = Message::EncodedSymbol { id, payload: bytes::Bytes::from(payload) };
        // decode copies; decode_from views — both must round-trip.
        prop_assert_eq!(Message::decode_from(&bytes::Bytes::from(msg.encode())).unwrap(), msg.clone());
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn recoded_symbol_roundtrip(
        components in proptest::collection::vec(any::<u64>(), 1..64),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let msg = Message::RecodedSymbol { components, payload: bytes::Bytes::from(payload) };
        prop_assert_eq!(Message::decode_from(&bytes::Bytes::from(msg.encode())).unwrap(), msg.clone());
        prop_assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn truncation_always_detected(
        components in proptest::collection::vec(any::<u64>(), 1..16),
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = Message::RecodedSymbol { components, payload: bytes::Bytes::from(vec![7; 32]) };
        let bytes = msg.encode();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            prop_assert!(Message::decode(&bytes[..cut]).is_err());
            prop_assert!(Message::decode_from(&bytes::Bytes::copy_from_slice(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn trailing_garbage_always_detected(extra in 1usize..16) {
        let mut bytes = Message::SymbolRequest { count: 7 }.encode();
        bytes.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::Invalid(_)) | Err(WireError::Truncated)
        ));
    }

    #[test]
    fn framing_is_faithful_to_message_decode(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        // A well-prefixed frame around an arbitrary body must land in
        // exactly the same place as decoding the body directly: same
        // message on success, a typed `Wire` error on failure — the
        // framing layer adds no acceptance and no panics of its own.
        let mut framed = (body.len() as u32).to_le_bytes().to_vec();
        framed.extend_from_slice(&body);
        let mut cursor = std::io::Cursor::new(framed);
        match (read_frame(&mut cursor, FrameLimit::default()), Message::decode(&body)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(FrameError::Wire(_)), Err(_)) => {}
            (framed, direct) => panic!("framing diverged: {framed:?} vs {direct:?}"),
        }
    }

    #[test]
    fn framed_stream_cut_anywhere_is_typed(
        counts in proptest::collection::vec(any::<u64>(), 1..4),
        cut_fraction in 0.0f64..1.0,
    ) {
        // Frame a few messages, cut the stream at an arbitrary byte,
        // and read until it ends: every outcome must be a typed frame
        // error — clean `Closed` exactly on a frame boundary, `Truncated`
        // with consistent counters mid-frame — and never a panic.
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for &count in &counts {
            write_frame(&mut buf, &Message::SymbolRequest { count }).expect("write");
            boundaries.push(buf.len());
        }
        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        let mut cursor = std::io::Cursor::new(&buf[..cut]);
        let mut decoded = 0usize;
        let end = loop {
            match read_frame(&mut cursor, FrameLimit::default()) {
                Ok(msg) => {
                    prop_assert_eq!(msg, Message::SymbolRequest { count: counts[decoded] });
                    decoded += 1;
                }
                Err(e) => break e,
            }
        };
        match end {
            FrameError::Closed => prop_assert_eq!(cut, boundaries[decoded]),
            FrameError::Truncated { needed, got } => {
                prop_assert!(needed > 0, "truncation must still be missing bytes");
                // The error's counters reconstruct the cut position.
                prop_assert_eq!(boundaries[decoded] + got, cut);
            }
            other => panic!("expected Closed/Truncated, got {other:?}"),
        }
        prop_assert!(decoded <= counts.len());
    }
}

/// Hand-written malformed frames, each of which must be rejected with
/// the *specific* typed error a driver can act on — the corpus the
/// nightly fuzz lane grew out of.
#[test]
fn malformed_frame_corpus_is_rejected_with_typed_errors() {
    fn framed(body: &[u8]) -> Vec<u8> {
        let mut buf = (body.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(body);
        buf
    }
    let valid = {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::SymbolRequest { count: 9 }).expect("write");
        buf
    };

    // (name, stream bytes, check on the resulting error)
    type ErrorCheck = Box<dyn Fn(&FrameError) -> bool>;
    let corpus: Vec<(&str, Vec<u8>, ErrorCheck)> = vec![
        (
            "empty stream is a clean close",
            Vec::new(),
            Box::new(|e| matches!(e, FrameError::Closed)),
        ),
        (
            "truncated length prefix",
            vec![0x01, 0x00],
            Box::new(|e| matches!(e, FrameError::Truncated { needed: 2, got: 2 })),
        ),
        (
            "oversized length prefix is rejected before allocating",
            {
                let mut buf = u32::MAX.to_le_bytes().to_vec();
                buf.extend_from_slice(&[0u8; 8]);
                buf
            },
            Box::new(|e| {
                matches!(
                    e,
                    FrameError::TooLarge {
                        claimed: u32::MAX,
                        ..
                    }
                )
            }),
        ),
        (
            "body cut mid-frame",
            valid[..valid.len() - 3].to_vec(),
            Box::new(|e| matches!(e, FrameError::Truncated { needed: 3, .. })),
        ),
        (
            "unknown message tag",
            framed(&[0xEE]),
            Box::new(|e| matches!(e, FrameError::Wire(_))),
        ),
        (
            "unknown summary id inside a summary frame",
            framed(&[0x07, 0xEE, 0xEE, 0xEE]),
            Box::new(|e| matches!(e, FrameError::Wire(_))),
        ),
        (
            "declared length longer than the message",
            {
                let mut body = Message::SymbolRequest { count: 9 }.encode();
                body.extend_from_slice(&[0u8; 3]);
                framed(&body)
            },
            Box::new(|e| matches!(e, FrameError::Wire(_))),
        ),
    ];

    for (name, bytes, check) in corpus {
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor, FrameLimit::default()) {
            Ok(msg) => panic!("{name}: accepted as {msg:?}"),
            Err(e) => assert!(check(&e), "{name}: wrong error {e:?}"),
        }
    }
}

#[test]
fn framing_roundtrip_over_in_memory_stream() {
    use icd_wire::framing::{read_frame, write_frame, FrameLimit};
    let msgs = vec![
        Message::SymbolRequest { count: 1 },
        Message::EncodedSymbol {
            id: 2,
            payload: bytes::Bytes::from(vec![3; 100]),
        },
        Message::End { sent: 1 },
    ];
    let mut buf = Vec::new();
    for m in &msgs {
        write_frame(&mut buf, m).expect("write");
    }
    let mut cursor = std::io::Cursor::new(buf);
    for m in &msgs {
        assert_eq!(&read_frame(&mut cursor, FrameLimit::default()).expect("read"), m);
    }
}
