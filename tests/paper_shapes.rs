//! Qualitative reproduction tests: the *shapes* of the paper's evaluation
//! must hold at test scale — who wins, in which direction curves move,
//! and where regimes flip. These are the claims EXPERIMENTS.md records
//! quantitatively; here they gate CI.

use icd_bench::experiments::art_accuracy::accuracy_cell;
use icd_bench::ExpConfig;
use icd_overlay::scenario::{MultiSenderScenario, ScenarioParams, TwoPeerScenario};
use icd_overlay::strategy::StrategyKind;
use icd_summary::SummaryId;
use icd_overlay::transfer::{
    random_strategy_analytic_overhead, run_multi_partial, run_transfer, run_with_full_sender,
};

fn cfg() -> ExpConfig {
    ExpConfig {
        num_blocks: 2_500,
        trials: 2,
        base_seed: 0x5EED,
    }
}

fn mean_overhead(scenario: &TwoPeerScenario, strategy: StrategyKind, trials: u64) -> f64 {
    (0..trials)
        .map(|s| run_transfer(scenario, strategy, s).overhead())
        .sum::<f64>()
        / trials as f64
}

#[test]
fn fig5a_compact_shape() {
    let params = ScenarioParams::compact(cfg().num_blocks, 0xA);
    let low = TwoPeerScenario::build(&params, 0.0);
    let high = TwoPeerScenario::build(&params, 0.45);

    // Random is coupon-collector bad and degrades with correlation.
    let random_low = mean_overhead(&low, StrategyKind::Random, 2);
    let random_high = mean_overhead(&high, StrategyKind::Random, 2);
    assert!(random_low > 2.0, "Random at c=0: {random_low}");
    assert!(random_high > random_low * 1.4, "Random must degrade: {random_low} → {random_high}");

    // Random/BF is flat at ≈ 1.
    let bf_low = mean_overhead(&low, StrategyKind::RandomSummary(SummaryId::BLOOM), 2);
    let bf_high = mean_overhead(&high, StrategyKind::RandomSummary(SummaryId::BLOOM), 2);
    assert!(bf_low < 1.1 && bf_high < 1.1, "Random/BF must stay ≈1: {bf_low}, {bf_high}");

    // Recode/BF stays low; oblivious Recode degrades with correlation.
    let rbf_high = mean_overhead(&high, StrategyKind::RecodeSummary(SummaryId::BLOOM), 2);
    let recode_low = mean_overhead(&low, StrategyKind::Recode, 2);
    let recode_high = mean_overhead(&high, StrategyKind::Recode, 2);
    assert!(rbf_high < 1.4, "Recode/BF at c=0.45: {rbf_high}");
    assert!(recode_high > recode_low, "Recode must degrade with correlation");
    assert!(recode_high < random_high, "Recoding beats Random in compact");
}

#[test]
fn fig5b_stretched_regime_flip() {
    // The paper's headline crossover: in the stretched scenario Random
    // becomes cheap while oblivious recoding becomes the *worst* choice
    // ("they recode over too large a domain").
    let params = ScenarioParams::stretched(cfg().num_blocks, 0xB);
    let s = TwoPeerScenario::build(&params, 0.1);
    let random = mean_overhead(&s, StrategyKind::Random, 2);
    let recode = mean_overhead(&s, StrategyKind::Recode, 2);
    let recode_bf = mean_overhead(&s, StrategyKind::RecodeSummary(SummaryId::BLOOM), 2);
    assert!(random < 2.0, "Random is cheap when symbols are plentiful: {random}");
    assert!(recode > random, "oblivious recoding must be worse than Random here");
    assert!(recode_bf < recode, "restricted-domain Recode/BF must beat oblivious Recode");
}

#[test]
fn fig6_speedup_shape() {
    let params = ScenarioParams::compact(cfg().num_blocks, 0xC);
    let s = TwoPeerScenario::build(&params, 0.2);
    let bf = run_with_full_sender(&s, StrategyKind::RandomSummary(SummaryId::BLOOM), 1).speedup();
    let random = run_with_full_sender(&s, StrategyKind::Random, 1).speedup();
    let recode = run_with_full_sender(&s, StrategyKind::Recode, 1).speedup();
    assert!(bf > 1.9, "Random/BF approaches 2: {bf}");
    assert!(random > 1.4, "Random performs well with a full sender: {random}");
    assert!(recode < bf, "oblivious recoding is the poorest: {recode} vs {bf}");
    for v in [bf, random, recode] {
        assert!(v <= 2.0 + 1e-9, "speedup cannot exceed the 2 senders: {v}");
    }
}

#[test]
fn fig78_rate_scales_with_senders() {
    let params = ScenarioParams::compact(cfg().num_blocks, 0xD);
    for (k, floor) in [(2usize, 1.8), (4usize, 3.2)] {
        let s = MultiSenderScenario::build(&params, k, 0.1);
        let rate = run_multi_partial(&s, StrategyKind::RandomSummary(SummaryId::BLOOM), 1).speedup();
        assert!(
            rate > floor && rate <= k as f64 + 1e-9,
            "k={k}: rate {rate} outside ({floor}, {k}]"
        );
    }
    // Degradation toward c = 0.5 for the oblivious strategy.
    let lo = run_multi_partial(
        &MultiSenderScenario::build(&params, 2, 0.0),
        StrategyKind::Random,
        1,
    )
    .speedup();
    let hi = run_multi_partial(
        &MultiSenderScenario::build(&params, 2, 0.5),
        StrategyKind::Random,
        1,
    )
    .speedup();
    assert!(hi < lo, "Random must degrade toward c=0.5: {lo} → {hi}");
}

#[test]
fn coupon_collector_matches_simulation() {
    // §6.3: "this strategy is precisely characterized by the well known
    // Coupon Collector's problem" — our simulator agrees with the closed
    // form to within sampling noise.
    let params = ScenarioParams::compact(4000, 0xE);
    let s = TwoPeerScenario::build(&params, 0.0);
    let analytic =
        random_strategy_analytic_overhead(s.sender_set.len(), s.sender_set.len(), s.needed());
    let simulated = mean_overhead(&s, StrategyKind::Random, 3);
    assert!(
        (simulated - analytic).abs() / analytic < 0.15,
        "simulated {simulated} vs analytic {analytic}"
    );
}

#[test]
fn fig4_accuracy_shape() {
    let cfg = ExpConfig {
        num_blocks: 4000,
        trials: 2,
        base_seed: 0xF,
    };
    // Correction monotonicity at a tight budget (Table 4(b) rows).
    let c0 = accuracy_cell(&cfg, 4.0, 2.0, 0);
    let c5 = accuracy_cell(&cfg, 4.0, 2.0, 5);
    assert!(c5 > c0, "correction must recover accuracy: {c0} → {c5}");
    // Budget monotonicity (Table 4(b) columns).
    let lo = accuracy_cell(&cfg, 2.0, 1.0, 3);
    let hi = accuracy_cell(&cfg, 8.0, 4.0, 3);
    assert!(hi > lo, "more bits must help: {lo} → {hi}");
    // Degenerate splits collapse (Figure 4(a) endpoints).
    let no_leaf = accuracy_cell(&cfg, 8.0, 0.0, 3);
    let balanced = accuracy_cell(&cfg, 8.0, 4.0, 3);
    assert!(no_leaf < 0.05, "zero leaf bits ⇒ no confirmations: {no_leaf}");
    assert!(balanced > no_leaf);
}
